package query

// Parallel execution of the plan's scan shapes. Each row-emitting
// terminal (Scan, ScanMulti, Diff) and Aggregate first offers its scan
// to the database's parallel executor (core.Table.ParallelScanContext)
// and falls back to the sequential pushdown path when the executor
// declines — engine without the capability, pool of one, fewer than
// two frozen segments, or the plan's NoParallel flag.
//
// Row shapes buffer each unit's output (records cloned on the worker)
// and flush the buffers in unit order, reproducing the sequential
// stream exactly. When the plan carries Limit/OrderBy the units
// pre-trim: a bare Limit stops each unit after `limit` kept rows, and
// OrderBy+Limit keeps a per-unit top-k heap — sound because a row of
// the global top-k is necessarily in its unit's top-k, and exact
// because both the unit trim and EmitOrdered break ordering ties by
// arrival order. Only the facade terminals set Limit/OrderBy, and they
// always run EmitOrdered above these shapes; plans without them emit
// the exact full sequential stream.
//
// Aggregates skip row buffering entirely: each unit folds its own
// partial (count / sums / min / max) and the partials merge in unit
// order. Count, Sum over integers, Min and Max merge exactly; a
// float Sum associates additions differently than the sequential fold,
// so it can differ in the last ulps on data where addition order
// matters (exact on the binary fractions the tests use).

import (
	"container/heap"
	"context"
	"sort"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
)

// bufRow is one record a scan unit retained: cloned, with whichever
// annotation its shape needs, tagged with the unit-local arrival
// sequence so trimmed output replays in scan order.
type bufRow struct {
	rec    *record.Record
	member *bitmap.Bitmap
	seq    int
}

// unitBuf buffers one unit's kept rows, pre-trimmed per the plan.
type unitBuf struct {
	rows   []bufRow
	limit  int
	cmp    func(a, b *record.Record) int // nil = storage order
	next   int
	heaped bool
}

// cmpRows is the plan comparator with arrival-order tie-breaking —
// the same total order EmitOrdered ranks by.
func (b *unitBuf) cmpRows(x, y bufRow) int {
	if d := b.cmp(x.rec, y.rec); d != 0 {
		return d
	}
	return x.seq - y.seq
}

// heap.Interface (only used with cmp set): max-heap, the root is the
// worst retained row.
func (b *unitBuf) Len() int           { return len(b.rows) }
func (b *unitBuf) Less(i, j int) bool { return b.cmpRows(b.rows[i], b.rows[j]) > 0 }
func (b *unitBuf) Swap(i, j int)      { b.rows[i], b.rows[j] = b.rows[j], b.rows[i] }
func (b *unitBuf) Push(x any)         { b.rows = append(b.rows, x.(bufRow)) }
func (b *unitBuf) Pop() any {
	n := len(b.rows)
	r := b.rows[n-1]
	b.rows = b.rows[:n-1]
	return r
}

// add retains one kept row; the false return stops the unit early
// (bare Limit satisfied).
func (b *unitBuf) add(row bufRow) bool {
	row.seq = b.next
	b.next++
	if b.cmp != nil && b.limit > 0 {
		b.heaped = true
		if len(b.rows) < b.limit {
			heap.Push(b, row)
		} else if b.cmpRows(row, b.rows[0]) < 0 {
			b.rows[0] = row
			heap.Fix(b, 0)
		}
		return true
	}
	b.rows = append(b.rows, row)
	return b.limit <= 0 || len(b.rows) < b.limit
}

// flush replays the kept rows in scan order.
func (b *unitBuf) flush(emit func(bufRow) bool) bool {
	if b.heaped {
		sort.Slice(b.rows, func(i, j int) bool { return b.rows[i].seq < b.rows[j].seq })
	}
	for _, row := range b.rows {
		if !emit(row) {
			return false
		}
	}
	return true
}

// rowSink builds the per-unit sink factory of a row-emitting shape.
// keep filters on the unit annotation before buffering (the diff
// terminal's side selection — trims must count only kept rows);
// saveMember clones the membership bitmap alongside the record.
func (c *Compiled) rowSink(keep func(core.UnitAux) bool, saveMember bool, emit func(bufRow) bool) func(unit, total int) core.UnitSink {
	limit := c.plan.Limit
	var cmp func(a, b *record.Record) int
	if c.Ordered() {
		cmp = c.orderCmp()
	}
	return func(int, int) core.UnitSink {
		b := &unitBuf{limit: limit, cmp: cmp}
		return core.UnitSink{
			Fn: func(rec *record.Record, aux core.UnitAux) bool {
				if keep != nil && !keep(aux) {
					return true
				}
				row := bufRow{rec: rec.Clone()}
				if saveMember && aux.Member != nil {
					row.member = aux.Member.Clone()
				}
				return b.add(row)
			},
			Flush: func() bool { return b.flush(emit) },
		}
	}
}

// tryParallelRows offers a plain row scan (branch, commit or diff —
// keep selects the diff side) to the parallel executor.
func (c *Compiled) tryParallelRows(ctx context.Context, req core.ScanRequest, keep func(core.UnitAux) bool, fn core.ScanFunc) (bool, error) {
	if c.plan.NoParallel {
		return false, nil
	}
	// The ctx guard keeps the flush phase (the only part that outlives
	// the workers) stopping within one record of cancellation, like the
	// sequential wrappers; ParallelScanContext then surfaces ctx.Err().
	return c.table.ParallelScanContext(ctx, req, c.execSpec(),
		c.rowSink(keep, false, func(row bufRow) bool { return ctx.Err() == nil && fn(row.rec) }))
}

// tryParallelMulti offers the annotated multi-branch scan to the
// parallel executor.
func (c *Compiled) tryParallelMulti(ctx context.Context, req core.ScanRequest, fn core.MultiScanFunc) (bool, error) {
	if c.plan.NoParallel {
		return false, nil
	}
	return c.table.ParallelScanContext(ctx, req, c.execSpec(),
		c.rowSink(nil, true, func(row bufRow) bool { return ctx.Err() == nil && fn(row.rec, row.member) }))
}

// aggPart is one unit's partial aggregate.
type aggPart struct {
	n          int
	isum       int64
	fsum       float64
	fmin, fmax float64
}

// merge folds a later unit's partial into the running total.
func (t *aggPart) merge(p *aggPart) {
	if p.n == 0 {
		return
	}
	if t.n == 0 {
		*t = *p
		return
	}
	t.n += p.n
	t.isum += p.isum
	t.fsum += p.fsum
	if p.fmin < t.fmin {
		t.fmin = p.fmin
	}
	if p.fmax > t.fmax {
		t.fmax = p.fmax
	}
}

// tryParallelGroups offers a grouped aggregation to the parallel
// executor: one groupFold per unit, merged into total in unit order —
// first-arrival emission order is preserved exactly (see group.go).
func (c *Compiled) tryParallelGroups(ctx context.Context, req core.ScanRequest, spec *core.ScanSpec, total *groupFold) (bool, error) {
	if c.plan.NoParallel {
		return false, nil
	}
	sink := func(int, int) core.UnitSink {
		p := total.fresh()
		return core.UnitSink{
			Fn:    func(rec *record.Record, _ core.UnitAux) bool { p.add(rec); return true },
			Flush: func() bool { total.mergeFrom(p); return true },
		}
	}
	return c.table.ParallelScanContext(ctx, req, spec, sink)
}

// tryParallelAggregate offers an aggregate scan to the parallel
// executor: per-unit partials, no record cloning, merged in unit
// order on the caller's goroutine.
func (c *Compiled) tryParallelAggregate(ctx context.Context, req core.ScanRequest, spec *core.ScanSpec, kind AggKind, ci int, isFloat bool) (*aggPart, bool, error) {
	if c.plan.NoParallel {
		return nil, false, nil
	}
	total := &aggPart{}
	sink := func(int, int) core.UnitSink {
		p := &aggPart{}
		return core.UnitSink{
			Fn: func(rec *record.Record, _ core.UnitAux) bool {
				p.n++
				if kind == AggCount {
					return true
				}
				var v float64
				if isFloat {
					v = rec.GetFloat64(ci)
					p.fsum += v
				} else {
					i := rec.Get(ci)
					p.isum += i
					v = float64(i)
				}
				if p.n == 1 || v < p.fmin {
					p.fmin = v
				}
				if p.n == 1 || v > p.fmax {
					p.fmax = v
				}
				return true
			},
			Flush: func() bool { total.merge(p); return true },
		}
	}
	handled, err := c.table.ParallelScanContext(ctx, req, spec, sink)
	if !handled || err != nil {
		return nil, handled, err
	}
	return total, true, nil
}
