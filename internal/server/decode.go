package server

import (
	"encoding/json"
	"io"
	"net/http"

	"decibel/client"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

// decodeJSON reads one request body. UseNumber keeps int64 column
// values exact — JSON has one number type, Decibel has three, and the
// schema decides which one each value becomes (see coerce).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

// coerce converts a decoded JSON value into the Go type the column's
// accessors expect: int64 for integer columns, float64 for floats,
// []byte for byte strings. The predicate compiler and Record setters
// reject mistyped values, so coerce only bridges JSON's single number
// type — it never changes a value.
func coerce(v any, t record.Type) (any, error) {
	switch t {
	case record.Int32, record.Int64:
		switch n := v.(type) {
		case json.Number:
			i, err := n.Int64()
			if err != nil {
				return nil, badRequestf("integer column value %v: %v", n, err)
			}
			return i, nil
		case float64: // decoded without UseNumber (defensive)
			if n == float64(int64(n)) {
				return int64(n), nil
			}
			return nil, badRequestf("integer column value %v has a fraction", n)
		}
	case record.Float64:
		switch n := v.(type) {
		case json.Number:
			f, err := n.Float64()
			if err != nil {
				return nil, badRequestf("float column value %v: %v", n, err)
			}
			return f, nil
		case float64:
			return n, nil
		}
	case record.Bytes:
		if s, ok := v.(string); ok {
			return []byte(s), nil
		}
	}
	return v, nil // let the typed layer produce its sentinel error
}

// decodeExpr translates a wire predicate into the typed AST, coercing
// leaf values against the schema the query addresses. A nil wire
// expression is the match-all predicate.
func decodeExpr(e *client.Expr, sch *record.Schema) (iquery.Expr, error) {
	if e == nil {
		return iquery.All(), nil
	}
	set := 0
	for _, on := range []bool{e.Col != "", len(e.And) > 0, len(e.Or) > 0, e.Not != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return iquery.Expr{}, badRequestf("predicate node must set exactly one of col/and/or/not")
	}
	switch {
	case len(e.And) > 0:
		return decodeKids(e.And, sch, iquery.Expr.And)
	case len(e.Or) > 0:
		return decodeKids(e.Or, sch, iquery.Expr.Or)
	case e.Not != nil:
		k, err := decodeExpr(e.Not, sch)
		if err != nil {
			return iquery.Expr{}, err
		}
		return k.Not(), nil
	}
	val := e.Val
	if i := sch.ColumnIndex(e.Col); i >= 0 {
		var err error
		if val, err = coerce(val, sch.Column(i).Type); err != nil {
			return iquery.Expr{}, err
		}
	} // unknown columns flow through to the planner's ErrNoSuchColumn
	c := iquery.Col(e.Col)
	switch e.Op {
	case "eq":
		return c.Eq(val), nil
	case "ne":
		return c.Ne(val), nil
	case "lt":
		return c.Lt(val), nil
	case "le":
		return c.Le(val), nil
	case "gt":
		return c.Gt(val), nil
	case "ge":
		return c.Ge(val), nil
	case "prefix":
		return c.HasPrefix(val), nil
	default:
		return iquery.Expr{}, badRequestf("unknown predicate op %q", e.Op)
	}
}

func decodeKids(kids []client.Expr, sch *record.Schema, join func(iquery.Expr, iquery.Expr) iquery.Expr) (iquery.Expr, error) {
	acc, err := decodeExpr(&kids[0], sch)
	if err != nil {
		return iquery.Expr{}, err
	}
	for i := 1; i < len(kids); i++ {
		k, err := decodeExpr(&kids[i], sch)
		if err != nil {
			return iquery.Expr{}, err
		}
		acc = join(acc, k)
	}
	return acc, nil
}

// buildRecord encodes a values map against the schema writes to the
// branch head must carry. Omitted columns take the type's zero value;
// unknown names are rejected (a typo would otherwise silently drop a
// field).
func buildRecord(sch *record.Schema, values map[string]any) (*record.Record, error) {
	for name := range values {
		if sch.ColumnIndex(name) < 0 {
			return nil, badRequestf("unknown column %q", name)
		}
	}
	rec := record.New(sch)
	for i := 0; i < sch.NumColumns(); i++ {
		col := sch.Column(i)
		v, ok := values[col.Name]
		if !ok {
			if i == 0 {
				return nil, badRequestf("insert is missing the primary key column %q", col.Name)
			}
			continue
		}
		cv, err := coerce(v, col.Type)
		if err != nil {
			return nil, err
		}
		switch col.Type {
		case record.Int32, record.Int64:
			n, ok := cv.(int64)
			if !ok {
				return nil, badRequestf("column %q wants an integer, got %T", col.Name, v)
			}
			rec.Set(i, n)
		case record.Float64:
			f, ok := cv.(float64)
			if !ok {
				return nil, badRequestf("column %q wants a number, got %T", col.Name, v)
			}
			rec.SetFloat64(i, f)
		case record.Bytes:
			b, ok := cv.([]byte)
			if !ok {
				return nil, badRequestf("column %q wants a string, got %T", col.Name, v)
			}
			if err := rec.SetBytes(i, b); err != nil {
				return nil, badRequestf("column %q: %v", col.Name, err)
			}
		default:
			return nil, badRequestf("column %q has unsupported type", col.Name)
		}
	}
	return rec, nil
}

// rowOf materializes one emitted record as a wire row under its
// (possibly projected) schema.
func rowOf(rec *record.Record) client.Row {
	sch := rec.Schema()
	row := make(client.Row, sch.NumColumns())
	for i := 0; i < sch.NumColumns(); i++ {
		col := sch.Column(i)
		switch col.Type {
		case record.Int32, record.Int64:
			row[col.Name] = rec.Get(i)
		case record.Float64:
			row[col.Name] = rec.GetFloat64(i)
		case record.Bytes:
			row[col.Name] = string(rec.GetBytes(i))
		}
	}
	return row
}

// columnDef renders a schema column for listings and parses the wire
// form for alters.
func columnDef(c record.Column) client.ColumnDef {
	d := client.ColumnDef{Name: c.Name}
	switch c.Type {
	case record.Int32:
		d.Type = "int32"
	case record.Int64:
		d.Type = "int64"
	case record.Float64:
		d.Type = "float64"
	case record.Bytes:
		d.Type = "bytes"
		d.Cap = c.Size
	}
	return d
}

func parseColumnDef(d *client.ColumnDef) (record.Column, any, error) {
	var t record.Type
	switch d.Type {
	case "int32":
		t = record.Int32
	case "int64":
		t = record.Int64
	case "float64":
		t = record.Float64
	case "bytes":
		t = record.Bytes
		if d.Cap <= 0 {
			return record.Column{}, nil, badRequestf("bytes column %q needs a positive cap", d.Name)
		}
	default:
		return record.Column{}, nil, badRequestf("unknown column type %q", d.Type)
	}
	col := record.Column{Name: d.Name, Type: t, Size: d.Cap}
	var def any
	if d.Default != nil {
		var err error
		if def, err = coerce(d.Default, t); err != nil {
			return record.Column{}, nil, err
		}
	}
	return col, def, nil
}
