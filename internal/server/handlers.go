package server

import (
	"context"
	"net/http"

	"decibel/client"
	"decibel/internal/bitmap"
	"decibel/internal/core"
	iquery "decibel/internal/query"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// handleQuery is POST /v1/query: one query-builder invocation.
//
// Snapshot isolation: a single-branch read resolves the branch's head
// commit ID once, here, and compiles the plan pinned to it
// (Plan.AtCommit), so the whole scan observes exactly that version —
// lock-free, because commit history is immutable — no matter how many
// commits land on the branch while it runs. Multi-branch and diff
// shapes read the engines' internally-snapshotted head bitmaps
// instead (still lock-free; the union snapshot is taken under the
// engine mutex, not a branch lock).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req client.QueryRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	t, err := s.db.TableByName(req.Table)
	if err != nil {
		return err
	}
	where, err := decodeExpr(req.Where, t.Schema())
	if err != nil {
		return err
	}
	plan := iquery.Plan{
		Table:     req.Table,
		Where:     where,
		Cols:      req.Select,
		AtSeq:     -1,
		OrderCol:  req.OrderBy,
		OrderDesc: req.Desc,
		Limit:     req.Limit,
	}
	isDiff := len(req.Diff) > 0
	switch {
	case isDiff:
		if len(req.Diff) != 2 || len(req.Branches) > 0 || req.Heads {
			return badRequestf("diff takes exactly two branches and excludes branches/heads")
		}
		plan.Branches = req.Diff
	case req.Heads:
		plan.AllHeads = true
	default:
		plan.Branches = req.Branches
	}
	if req.At != nil {
		plan.AtSeq = *req.At
	}
	plan.AtCommit = vgraph.CommitID(req.AtCommit)

	if len(req.Join) > 0 {
		if isDiff || req.Heads {
			return badRequestf("join does not combine with diff or heads")
		}
		for _, jc := range req.Join {
			jt, err := s.db.TableByName(jc.Table)
			if err != nil {
				return err
			}
			jw, err := decodeExpr(jc.Where, jt.Schema())
			if err != nil {
				return err
			}
			leg := iquery.Plan{Table: jc.Table, Where: jw, Cols: jc.Select, AtSeq: -1}
			if jc.Branch != "" {
				leg.Branches = []string{jc.Branch}
			}
			plan.Joins = append(plan.Joins, iquery.JoinLeg{Plan: leg, LeftCol: jc.On[0], RightCol: jc.On[1]})
		}
		plan.NoReorder = req.DeclaredOrder
	}
	if len(req.Aggs) > 0 && len(req.GroupBy) == 0 {
		return badRequestf("aggs require groupBy")
	}
	if len(req.GroupBy) > 0 {
		if req.Agg != "" {
			return badRequestf("agg and groupBy do not combine; use aggs")
		}
		if isDiff {
			return badRequestf("groupBy does not combine with diff")
		}
		plan.GroupCols = req.GroupBy
	}

	resp := client.QueryResponse{}
	// Pin single-branch head reads to the head resolved now.
	if !isDiff && !req.Heads && len(plan.Branches) == 1 && plan.AtSeq < 0 {
		b, err := s.db.BranchNamed(plan.Branches[0])
		if err != nil {
			return err
		}
		if plan.AtCommit == vgraph.None {
			// Graph().Head, not b.Head: the live Branch struct is advanced
			// in place by concurrent commits.
			if head, ok := s.db.Graph().Head(b.ID); ok {
				plan.AtCommit = head
			}
		}
		if cm, ok := s.db.Graph().Commit(plan.AtCommit); ok {
			resp.Commit, resp.Seq, resp.Branch = uint64(cm.ID), cm.Seq, plan.Branches[0]
		}
	}

	c, err := plan.Compile(s.db)
	if err != nil {
		return err
	}
	ctx := r.Context()

	if req.Agg != "" {
		kind, err := aggKindOf(req.Agg)
		if err != nil {
			return err
		}
		v, err := c.Aggregate(ctx, kind, req.AggCol)
		if err != nil {
			return err
		}
		resp.Agg, resp.Count = v, int(v)
		if kind != iquery.AggCount {
			resp.Count = 0
		}
		return reply(w, &resp)
	}

	if len(plan.GroupCols) > 0 {
		specs := make([]iquery.AggSpec, len(req.Aggs))
		for i, a := range req.Aggs {
			kind, err := aggKindOf(a.Agg)
			if err != nil {
				return err
			}
			specs[i] = iquery.AggSpec{Kind: kind, Col: a.Col}
		}
		err = c.GroupScan(ctx, specs, func(g *iquery.GroupRow) bool {
			gw := client.GroupWire{Key: make([]any, len(g.Key)), Aggs: g.Aggs}
			for i, v := range g.Key {
				if b, ok := v.([]byte); ok {
					gw.Key[i] = string(b)
				} else {
					gw.Key[i] = v
				}
			}
			resp.Groups = append(resp.Groups, gw)
			return true
		})
		if err != nil {
			return err
		}
		resp.Count = len(resp.Groups)
		return reply(w, &resp)
	}

	if len(plan.Joins) > 0 {
		err = c.JoinTuples(ctx, func(t iquery.JoinTuple) bool {
			rows := make([]client.Row, len(t))
			for i, rec := range t {
				rows[i] = rowOf(rec)
			}
			resp.Tuples = append(resp.Tuples, rows)
			return true
		})
		if err != nil {
			return err
		}
		resp.Count = len(resp.Tuples)
		return reply(w, &resp)
	}

	multi := !isDiff && (req.Heads || len(plan.Branches) > 1)
	switch {
	case multi:
		if plan.OrderCol != "" || plan.Limit > 0 {
			return badRequestf("orderBy/limit do not apply to multi-branch (annotated) reads")
		}
		branches := c.Branches()
		err = c.ScanMulti(ctx, func(rec *record.Record, member *bitmap.Bitmap) bool {
			row := rowOf(rec)
			names := make([]string, 0, 2)
			member.ForEach(func(i int) bool {
				names = append(names, branches[i].Name)
				return true
			})
			row["_branches"] = names
			resp.Rows = append(resp.Rows, row)
			return true
		})
	case isDiff:
		err = c.EmitOrdered(func(fn core.ScanFunc) error { return c.Diff(ctx, fn) },
			func(rec *record.Record) bool {
				resp.Rows = append(resp.Rows, rowOf(rec))
				return true
			})
	default:
		err = c.EmitOrdered(func(fn core.ScanFunc) error { return c.Scan(ctx, fn) },
			func(rec *record.Record) bool {
				resp.Rows = append(resp.Rows, rowOf(rec))
				return true
			})
	}
	if err != nil {
		return err
	}
	resp.Count = len(resp.Rows)
	return reply(w, &resp)
}

// aggKindOf maps a wire aggregate name to its plan kind.
func aggKindOf(name string) (iquery.AggKind, error) {
	switch name {
	case "count":
		return iquery.AggCount, nil
	case "sum":
		return iquery.AggSum, nil
	case "min":
		return iquery.AggMin, nil
	case "max":
		return iquery.AggMax, nil
	case "avg":
		return iquery.AggAvg, nil
	}
	return 0, badRequestf("unknown aggregate %q", name)
}

// handleCommit is POST /v1/commit: one transaction against a branch
// head, mirroring the facade's Commit(branch, fn) — the ops apply
// under the branch's exclusive lock and commit atomically; any
// failure rolls every touched key back to its committed state.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) error {
	var req client.CommitRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Ops) == 0 {
		return badRequestf("commit has no ops")
	}
	ctx := r.Context()
	sess, err := s.db.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	if err := sess.CheckoutForWrite(ctx, req.Branch); err != nil {
		return err
	}
	branchID := sess.Branch().ID

	touched := make(map[string]map[int64]struct{})
	note := func(table string, pk int64) {
		if touched[table] == nil {
			touched[table] = make(map[int64]struct{})
		}
		touched[table][pk] = struct{}{}
	}
	rollback := func() error {
		rctx := context.WithoutCancel(ctx)
		for table, pks := range touched {
			keys := make([]int64, 0, len(pks))
			for pk := range pks {
				keys = append(keys, pk)
			}
			if err := sess.Revert(rctx, table, keys); err != nil {
				return err
			}
		}
		return nil
	}

	for _, op := range req.Ops {
		var err error
		switch op.Op {
		case "insert":
			var t *core.Table
			if t, err = s.db.TableByName(op.Table); err == nil {
				// Writes carry the schema of the branch's head epoch —
				// not the globally newest one, which another branch's
				// evolution may have advanced past this branch.
				var rec *record.Record
				if rec, err = buildRecord(t.SchemaAt(t.BranchEpoch(branchID)), op.Values); err == nil {
					note(op.Table, rec.PK())
					err = sess.InsertContext(ctx, op.Table, rec)
				}
			}
		case "delete":
			note(op.Table, op.PK)
			err = sess.DeleteContext(ctx, op.Table, op.PK)
		default:
			err = badRequestf("unknown op %q", op.Op)
		}
		if err != nil {
			if rbErr := rollback(); rbErr != nil {
				return rbErr
			}
			return err
		}
	}

	message := req.Message
	if message == "" {
		message = "commit on " + req.Branch
	}
	cm, err := sess.CommitWorkContext(ctx, message)
	if err != nil {
		return err
	}
	commits.Add(1)
	return reply(w, &client.CommitResponse{Commit: uint64(cm.ID), Seq: cm.Seq})
}

// handleBranch is POST /v1/branch: create a branch from the current
// head of another, holding the parent's shared lock for the span so
// the branch point cannot move under a concurrent committer.
func (s *Server) handleBranch(w http.ResponseWriter, r *http.Request) error {
	var req client.BranchRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.From == "" || req.Name == "" {
		return badRequestf("branch needs from and name")
	}
	sess, err := s.db.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	if err := sess.AcquireBranch(r.Context(), req.From, false); err != nil {
		return err
	}
	b, err := s.db.BranchFromHead(req.Name, req.From)
	if err != nil {
		return err
	}
	return reply(w, s.branchResponse(b))
}

// handleMerge is POST /v1/merge, mirroring the facade's Merge: the
// target's exclusive lock, the source's shared lock, then the engines'
// merge.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) error {
	var req client.MergeRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	kind := core.ThreeWay
	switch req.Kind {
	case "", "threeway":
	case "twoway":
		kind = core.TwoWay
	default:
		return badRequestf("unknown merge kind %q", req.Kind)
	}
	intoWins := true
	switch req.Precedence {
	case "", "into":
	case "from":
		intoWins = false
	default:
		return badRequestf("unknown merge precedence %q", req.Precedence)
	}
	message := req.Message
	if message == "" {
		message = "merge " + req.From + " into " + req.Into
	}
	ctx := r.Context()
	sess, err := s.db.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	if err := sess.CheckoutForWrite(ctx, req.Into); err != nil {
		return err
	}
	if err := sess.AcquireBranch(ctx, req.From, false); err != nil {
		return err
	}
	bi, err := s.db.BranchNamed(req.Into)
	if err != nil {
		return err
	}
	bf, err := s.db.BranchNamed(req.From)
	if err != nil {
		return err
	}
	cm, stats, err := s.db.MergeContext(ctx, bi.ID, bf.ID, message, kind, intoWins)
	if err != nil {
		return err
	}
	commits.Add(1)
	return reply(w, &client.MergeResponse{
		Commit:    uint64(cm.ID),
		Merged:    stats.Materialized,
		Conflicts: stats.Conflicts,
	})
}

// handleAlter is POST /v1/alter: one schema-change transaction —
// exactly one add or drop, taking effect at its commit.
func (s *Server) handleAlter(w http.ResponseWriter, r *http.Request) error {
	var req client.AlterRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if (req.Add == nil) == (req.Drop == "") {
		return badRequestf("alter takes exactly one of add or drop")
	}
	ctx := r.Context()
	sess, err := s.db.NewSession()
	if err != nil {
		return err
	}
	defer sess.Close()
	if err := sess.CheckoutForWrite(ctx, req.Branch); err != nil {
		return err
	}
	var detail string
	if req.Add != nil {
		col, def, err := parseColumnDef(req.Add)
		if err != nil {
			return err
		}
		if err := sess.AddColumn(req.Table, col, def); err != nil {
			return err
		}
		detail = "add " + col.Name
	} else {
		if err := sess.DropColumn(req.Table, req.Drop); err != nil {
			return err
		}
		detail = "drop " + req.Drop
	}
	cm, err := sess.CommitWorkContext(ctx, "alter "+req.Table+": "+detail)
	if err != nil {
		return err
	}
	commits.Add(1)
	return reply(w, &client.CommitResponse{Commit: uint64(cm.ID), Seq: cm.Seq})
}

// handleTables is GET /v1/tables.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) error {
	tables := s.db.Tables()
	out := make([]client.TableResponse, 0, len(tables))
	for _, t := range tables {
		sch := t.Schema()
		tr := client.TableResponse{Name: t.Name()}
		for i := 0; i < sch.NumColumns(); i++ {
			tr.Columns = append(tr.Columns, columnDef(sch.Column(i)))
		}
		out = append(out, tr)
	}
	return reply(w, out)
}

// handleCompact is POST /v1/compact: run one compaction pass over the
// whole dataset and report what it accomplished. With compaction
// disabled on the database the pass is a no-op returning zeros. The
// pass runs inline on the request — concurrent reads keep serving off
// their pinned segment snapshots throughout.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) error {
	st, err := s.db.Compact()
	if err != nil {
		return err
	}
	return reply(w, map[string]int64{
		"segments_merged":     st.SegmentsMerged,
		"segments_compressed": st.SegmentsCompressed,
		"tombstones_dropped":  st.TombstonesDropped,
		"pages_compressed":    st.PagesCompressed,
		"bytes_reclaimed":     st.BytesReclaimed,
	})
}

// handleBranches is GET /v1/branches.
func (s *Server) handleBranches(w http.ResponseWriter, r *http.Request) error {
	branches := s.db.Graph().Branches()
	out := make([]client.BranchResponse, 0, len(branches))
	for _, b := range branches {
		out = append(out, *s.branchResponse(b))
	}
	return reply(w, out)
}

func (s *Server) branchResponse(b *vgraph.Branch) *client.BranchResponse {
	head, _ := s.db.Graph().Head(b.ID)
	return &client.BranchResponse{
		Name:   b.Name,
		Head:   uint64(head),
		Commit: len(s.db.Graph().CommitsOnBranch(b.ID)),
	}
}
