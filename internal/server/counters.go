package server

import (
	"expvar"
	"sync/atomic"

	"decibel/internal/core"
)

// Serving counters, published once per process alongside the storage
// counters (decibel.segments_scanned/_skipped, decibel.point_lookups)
// so /debug/vars is the one observability surface. Package-level
// because expvar names are process-global: tests construct many
// Servers, counters must not re-Publish.
var (
	requests    = expvar.NewInt("decibel.server.requests")
	errorsTotal = expvar.NewInt("decibel.server.errors")
	canceled    = expvar.NewInt("decibel.server.canceled")
	commits     = expvar.NewInt("decibel.server.commits")
)

// servedDB is the database whose session count the active-sessions
// gauge reports: the one behind the most recently constructed Server
// (one per process outside tests).
var servedDB atomic.Pointer[core.Database]

func registerDB(db *core.Database) {
	servedDB.Store(db)
}

func init() {
	expvar.Publish("decibel.server.active_sessions", expvar.Func(func() any {
		if db := servedDB.Load(); db != nil {
			return db.ActiveSessions()
		}
		return 0
	}))
}
