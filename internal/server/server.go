// Package server is decibel's network serving layer: an HTTP/JSON
// server (stdlib only) exposing the query builder, transactional
// commits, branch/merge and schema alters of one core.Database.
//
// Reads are snapshot-isolated and lock-free: a single-branch query
// resolves the branch's head commit once, at request start, and runs
// pinned to that commit ID — commit history is immutable, so the scan
// takes no branch locks and concurrent commits never move the data
// under it. Writes serialize through the session commit path (the
// branch's exclusive lock, strict 2PL), exactly like the embedded
// facade. Request cancellation rides the per-request context: a
// client disconnect aborts the scan within one record.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"time"

	"decibel/client"
	"decibel/internal/core"
)

// Server serves one core.Database over HTTP. Construct with New,
// mount Handler on any http.Server, or run Serve for the managed
// lifecycle (graceful drain on context cancellation).
type Server struct {
	db  *core.Database
	mux *http.ServeMux

	// ShutdownTimeout bounds the graceful drain Serve performs when
	// its context is canceled: in-flight requests get this long to
	// finish before the listener's connections are torn down, and the
	// database drain gets the same bound. Zero means 5s.
	ShutdownTimeout time.Duration
}

// New returns a server for db. The database's lifecycle belongs to
// the caller unless Serve is used (which closes it on shutdown).
func New(db *core.Database) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.routes()
	registerDB(db)
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/query", s.count(s.handleQuery))
	s.mux.HandleFunc("POST /v1/commit", s.count(s.handleCommit))
	s.mux.HandleFunc("POST /v1/branch", s.count(s.handleBranch))
	s.mux.HandleFunc("POST /v1/merge", s.count(s.handleMerge))
	s.mux.HandleFunc("POST /v1/alter", s.count(s.handleAlter))
	s.mux.HandleFunc("POST /v1/compact", s.count(s.handleCompact))
	s.mux.HandleFunc("GET /v1/tables", s.count(s.handleTables))
	s.mux.HandleFunc("GET /v1/branches", s.count(s.handleBranches))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is canceled (the serve
// subcommand wires SIGTERM/SIGINT into that), then shuts down
// gracefully: stop accepting, drain in-flight requests, drain the
// database's sessions and close it. Late arrivals during the drain
// get 503 ErrDatabaseClosed rather than a hang.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.mux,
		// BaseContext ties every request's context to the serve
		// context, so cancellation reaches in-flight scans too.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	// The serve ctx is already canceled; drain on a fresh one.
	dctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	serr := hs.Shutdown(dctx)
	cerr := s.db.CloseContext(dctx)
	<-errc // always http.ErrServerClosed after Shutdown
	if serr != nil {
		return serr
	}
	return cerr
}

// count wraps a handler with the request/error counters.
func (s *Server) count(h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if err := h(w, r); err != nil {
			s.fail(w, r, err)
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Probe liveness through the session gate so a draining or closed
	// database reports unhealthy.
	sess, err := s.db.NewSession()
	if err != nil {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	sess.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// reply writes v as the JSON response body.
func reply(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// fail maps an error to its HTTP status and stable code, counts it,
// and writes the error body. Client disconnects (request context
// canceled) are not server errors: nobody is listening, so nothing is
// written and the error counter stays put.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		canceled.Add(1)
		return
	}
	errorsTotal.Add(1)
	status, code := errStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(client.ErrorResponse{Error: err.Error(), Code: code})
}

// errStatus maps decibel's sentinel errors to HTTP statuses and the
// wire protocol's stable codes.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrNoSuchTable):
		return http.StatusNotFound, "no_such_table"
	case errors.Is(err, core.ErrNoSuchBranch):
		return http.StatusNotFound, "no_such_branch"
	case errors.Is(err, core.ErrNoSuchCommit):
		return http.StatusNotFound, "no_such_commit"
	case errors.Is(err, core.ErrNoSuchColumn):
		return http.StatusBadRequest, "no_such_column"
	case errors.Is(err, core.ErrColumnNotYetAdded):
		return http.StatusBadRequest, "column_not_yet_added"
	case errors.Is(err, core.ErrTypeMismatch):
		return http.StatusBadRequest, "type_mismatch"
	case errors.Is(err, core.ErrBadQuery):
		return http.StatusBadRequest, "bad_query"
	case errors.Is(err, core.ErrNoRows):
		return http.StatusNotFound, "no_rows"
	case errors.Is(err, core.ErrSchemaChange):
		return http.StatusConflict, "schema_change"
	case errors.Is(err, core.ErrDatabaseClosed):
		return http.StatusServiceUnavailable, "database_closed"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// errBadRequest marks protocol-level decode failures (malformed JSON,
// unknown op names) distinct from the engine's sentinels.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}
