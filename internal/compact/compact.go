// Package compact defines the background compaction subsystem's shared
// vocabulary: the options a compaction pass runs under, the statistics
// it reports, the crash-injection fail points the recovery tests drive,
// and the process-wide expvar counters. The engine-specific passes live
// with their engines (each owns its own catalog invariants); this
// package is what the core layer, the facade options, the CLI and the
// server all speak.
//
// A compaction pass over one table does up to three things, all on
// frozen storage only:
//
//   - merge: runs of small frozen segments with the same physical
//     layout collapse into one larger segment with freshly tightened
//     zone maps (hybrid engine).
//   - gc: tombstoned rows unreachable from any branch head or recorded
//     commit are dropped, and the bytes of physically unreferenced
//     segments are reclaimed.
//   - compress: frozen segments re-encode into per-column compressed
//     pages (store.EncDCZ) — dictionary for low-cardinality values,
//     delta+varint for int64 — read back transparently via the
//     SegMeta encoding tag.
//
// Crash safety follows the catalog-swap discipline: new segment
// content is written under fresh filenames and fsynced, the catalog is
// written to a temp file, fsynced and renamed (the commit point), and
// only then are replaced files unlinked — after the last pinned reader
// drains. A crash before the rename leaves orphan files the engines
// sweep on open; a crash after it leaves orphans of the old files,
// swept the same way.
package compact

import (
	"expvar"
	"sync/atomic"
	"time"
)

// Mode selects when compaction runs.
type Mode int

const (
	// ModeOff disables compaction entirely.
	ModeOff Mode = iota
	// ModeManual compacts only when explicitly requested
	// (Database.Compact, the CLI subcommand, or the server endpoint).
	ModeManual
	// ModeAuto additionally runs passes on a background ticker.
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeManual:
		return "manual"
	case ModeAuto:
		return "auto"
	}
	return "off"
}

// Fail points for crash-injection tests: a pass aborts (ErrFailPoint)
// at the named point, leaving disk in the state a crash there would.
const (
	// FailAfterTemp aborts after new segment content is written and
	// fsynced but before the catalog swap — the crash window where the
	// new files are orphans.
	FailAfterTemp = "after-temp"
	// FailBeforeUnlink completes the pass — catalog swapped, in-memory
	// state updated — but skips unlinking the replaced files, the
	// crash window where the old files are orphans.
	FailBeforeUnlink = "before-unlink"
)

// Options configures a compaction pass.
type Options struct {
	// Mode gates the pass; ModeOff makes every pass a no-op.
	Mode Mode
	// Interval is the auto-mode ticker period (0 = a default).
	Interval time.Duration
	// MinRun is the smallest run of adjacent small frozen segments
	// worth merging (0 = default 2).
	MinRun int
	// SmallRows is the row count under which a frozen segment counts
	// as small, i.e. a merge candidate (0 = default 4096).
	SmallRows int64
	// Compress enables re-encoding frozen segments into compressed
	// pages. Zero value is enabled via DefaultOptions; the facade
	// exposes it as a toggle.
	Compress bool
	// FailPoint, when set to one of the Fail* constants, aborts the
	// pass at that point for crash-injection tests.
	FailPoint string
}

// Defaults fills the zero fields with their defaults.
func (o Options) Defaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.MinRun <= 0 {
		o.MinRun = 2
	}
	if o.SmallRows <= 0 {
		o.SmallRows = 4096
	}
	return o
}

// ErrFailPoint is returned by a pass that aborted at an injected fail
// point; disk is left exactly as a crash at that point would leave it.
type failPointError string

func (e failPointError) Error() string {
	return "compact: aborted at injected fail point " + string(e)
}

// ErrFailPoint reports whether err is a fail-point abort.
func ErrFailPoint(err error) bool {
	_, ok := err.(failPointError)
	return ok
}

// FailPointErr builds the abort error for the named fail point.
func FailPointErr(point string) error { return failPointError(point) }

// Stats is what one compaction pass accomplished.
type Stats struct {
	// SegmentsMerged counts source segments folded into merged ones.
	SegmentsMerged int64
	// SegmentsCompressed counts segments re-encoded to compressed pages.
	SegmentsCompressed int64
	// TombstonesDropped counts tombstone rows physically removed.
	TombstonesDropped int64
	// PagesCompressed counts compressed pages written.
	PagesCompressed int64
	// BytesReclaimed is the net on-disk shrink: bytes of replaced
	// files minus bytes of their replacements.
	BytesReclaimed int64
}

// Add folds another pass's stats into s.
func (s *Stats) Add(o Stats) {
	s.SegmentsMerged += o.SegmentsMerged
	s.SegmentsCompressed += o.SegmentsCompressed
	s.TombstonesDropped += o.TombstonesDropped
	s.PagesCompressed += o.PagesCompressed
	s.BytesReclaimed += o.BytesReclaimed
}

// Zero reports whether the pass changed nothing.
func (s Stats) Zero() bool { return s == Stats{} }

// Process-wide compaction counters (expvar "decibel.compactions",
// ".segments_merged", ".bytes_reclaimed", ".compressed_pages"): the
// server's smoke test asserts they move when a compaction is
// triggered mid-load.
var (
	compactions     atomic.Int64
	segmentsMerged  atomic.Int64
	bytesReclaimed  atomic.Int64
	compressedPages atomic.Int64
)

func init() {
	expvar.Publish("decibel.compactions", expvar.Func(func() any { return compactions.Load() }))
	expvar.Publish("decibel.segments_merged", expvar.Func(func() any { return segmentsMerged.Load() }))
	expvar.Publish("decibel.bytes_reclaimed", expvar.Func(func() any { return bytesReclaimed.Load() }))
	expvar.Publish("decibel.compressed_pages", expvar.Func(func() any { return compressedPages.Load() }))
}

// CountRun folds one completed pass into the process-wide counters.
func CountRun(s Stats) {
	compactions.Add(1)
	segmentsMerged.Add(s.SegmentsMerged)
	bytesReclaimed.Add(s.BytesReclaimed)
	compressedPages.Add(s.PagesCompressed)
}

// Counters returns the cumulative process-wide counter values
// (compactions, segments merged, bytes reclaimed, compressed pages).
func Counters() (runs, merged, reclaimed, pages int64) {
	return compactions.Load(), segmentsMerged.Load(), bytesReclaimed.Load(), compressedPages.Load()
}
