// Package wal implements a minimal write-ahead log used to make Decibel
// version-control operations (commit, branch, merge) atomically
// visible, per Section 2.1: "fault tolerance and recovery can be done
// by employing standard write-ahead logging techniques on writes".
//
// The log is a single append-only file of CRC-protected records:
//
//	record := lsn(uvarint) | kind(1) | len(uvarint) | payload | crc32(4)
//
// Replay stops at the first corrupt or torn record and truncates the
// tail, so a crash mid-append never exposes a partial record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Kind tags the logical operation a record describes. The storage
// engines define their own payload encodings; the WAL treats payloads
// as opaque.
type Kind byte

// Well-known record kinds used by the engines.
const (
	KindBegin  Kind = 1 // begin of a multi-record atomic group
	KindData   Kind = 2 // engine-specific payload
	KindCommit Kind = 3 // end of group: the group is durable and applies
	KindAbort  Kind = 4 // group abandoned
)

// Record is one durable log record.
type Record struct {
	LSN     uint64
	Kind    Kind
	Payload []byte
}

// Log is an append-only write-ahead log. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	nextLSN uint64
	size    int64
}

// Open opens (creating if absent) the log at path and recovers its
// valid prefix, truncating any torn tail.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, nextLSN: 1}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func (l *Log) recover() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid := 0
	pos := 0
	for pos < len(data) {
		rec, n, err := decodeRecord(data[pos:])
		if err != nil {
			break
		}
		l.nextLSN = rec.LSN + 1
		pos += n
		valid = pos
	}
	if valid < len(data) {
		if err := l.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	l.size = int64(valid)
	_, err = l.f.Seek(int64(valid), io.SeekStart)
	return err
}

func decodeRecord(data []byte) (Record, int, error) {
	lsn, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	pos := n1
	if pos >= len(data) {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	kind := Kind(data[pos])
	pos++
	plen, n2 := binary.Uvarint(data[pos:])
	if n2 <= 0 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	pos += n2
	if len(data) < pos+int(plen)+4 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	payload := data[pos : pos+int(plen)]
	pos += int(plen)
	want := binary.LittleEndian.Uint32(data[pos:])
	got := crc32.ChecksumIEEE(data[:pos])
	if want != got {
		return Record{}, 0, fmt.Errorf("wal: bad crc")
	}
	pos += 4
	return Record{LSN: lsn, Kind: kind, Payload: append([]byte(nil), payload...)}, pos, nil
}

// Append durably appends one record and returns its LSN. The record is
// written but not fsynced; call Sync for durability.
func (l *Log) Append(kind Kind, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	buf := binary.AppendUvarint(nil, lsn)
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(buf))
	l.nextLSN++
	return lsn, nil
}

// AppendGroup atomically logs Begin, the payloads as Data records, and
// Commit. On replay, a group without its Commit record is ignored.
func (l *Log) AppendGroup(payloads ...[]byte) (uint64, error) {
	if _, err := l.Append(KindBegin, nil); err != nil {
		return 0, err
	}
	for _, p := range payloads {
		if _, err := l.Append(KindData, p); err != nil {
			return 0, err
		}
	}
	return l.Append(KindCommit, nil)
}

// Replay calls fn for every complete record from the start of the log.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	size := l.size
	l.mu.Unlock()
	data := make([]byte, size)
	if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
		return fmt.Errorf("wal: %w", err)
	}
	pos := 0
	for pos < len(data) {
		rec, n, err := decodeRecord(data[pos:])
		if err != nil {
			return nil // torn tail: recovery already bounded size
		}
		if err := fn(rec); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// ReplayGroups calls fn once per committed group with its Data
// payloads, skipping aborted or torn groups.
func (l *Log) ReplayGroups(fn func(payloads [][]byte) error) error {
	var cur [][]byte
	inGroup := false
	return l.Replay(func(r Record) error {
		switch r.Kind {
		case KindBegin:
			cur, inGroup = nil, true
		case KindData:
			if inGroup {
				cur = append(cur, r.Payload)
			}
		case KindCommit:
			if inGroup {
				inGroup = false
				return fn(cur)
			}
		case KindAbort:
			cur, inGroup = nil, false
		}
		return nil
	})
}

// Size returns the log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Sync fsyncs the log.
func (l *Log) Sync() error { return l.f.Sync() }

// Truncate discards the whole log (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = 0
	return nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }
