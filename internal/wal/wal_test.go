package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(KindData, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var got []string
	if err := l.Replay(func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "payload-0" || got[9] != "payload-9" {
		t.Fatalf("replayed %v", got)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	l.Append(KindData, []byte("a"))
	l.Append(KindData, []byte("b"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, err := l2.Append(KindData, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("lsn after reopen = %d, want 3", lsn)
	}
	count := 0
	l2.Replay(func(Record) error { count++; return nil })
	if count != 3 {
		t.Fatalf("replayed %d records", count)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	l.Append(KindData, []byte("complete"))
	l.Append(KindData, bytes.Repeat([]byte("x"), 100))
	l.Close()

	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-7], 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var payloads []string
	l2.Replay(func(r Record) error { payloads = append(payloads, string(r.Payload)); return nil })
	if len(payloads) != 1 || payloads[0] != "complete" {
		t.Fatalf("after torn tail: %v", payloads)
	}
	// New appends go after the valid prefix.
	if _, err := l2.Append(KindData, []byte("post")); err != nil {
		t.Fatal(err)
	}
	payloads = nil
	l2.Replay(func(r Record) error { payloads = append(payloads, string(r.Payload)); return nil })
	if len(payloads) != 2 || payloads[1] != "post" {
		t.Fatalf("after recovery append: %v", payloads)
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	l.Append(KindData, []byte("one"))
	off := l.Size()
	l.Append(KindData, []byte("two"))
	l.Close()

	// Flip a byte inside the second record.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xFF}, off+3)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	l2.Replay(func(Record) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d records past corruption", count)
	}
}

func TestGroups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	if _, err := l.AppendGroup([]byte("g1a"), []byte("g1b")); err != nil {
		t.Fatal(err)
	}
	// An unfinished group: begin + data without commit.
	l.Append(KindBegin, nil)
	l.Append(KindData, []byte("orphan"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var groups [][][]byte
	l2.ReplayGroups(func(p [][]byte) error { groups = append(groups, p); return nil })
	if len(groups) != 1 {
		t.Fatalf("got %d committed groups, want 1", len(groups))
	}
	if len(groups[0]) != 2 || string(groups[0][0]) != "g1a" {
		t.Fatalf("group payloads: %v", groups[0])
	}
}

func TestAbortedGroupSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	l.Append(KindBegin, nil)
	l.Append(KindData, []byte("doomed"))
	l.Append(KindAbort, nil)
	l.AppendGroup([]byte("kept"))
	defer l.Close()
	var groups [][][]byte
	l.ReplayGroups(func(p [][]byte) error { groups = append(groups, p); return nil })
	if len(groups) != 1 || string(groups[0][0]) != "kept" {
		t.Fatalf("groups: %v", groups)
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path)
	defer l.Close()
	l.Append(KindData, []byte("x"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after truncate = %d", l.Size())
	}
	count := 0
	l.Replay(func(Record) error { count++; return nil })
	if count != 0 {
		t.Fatal("records survive truncate")
	}
}

func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("p"), 128)
	b.ReportAllocs()
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(KindData, payload); err != nil {
			b.Fatal(err)
		}
	}
}
