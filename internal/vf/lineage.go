package vf

import (
	"fmt"

	"decibel/internal/record"
)

// interval is a half-open slot range [From, To) of one segment. A
// branch's lineage is an ordered list of steps: earlier steps shadow
// later ones, so a record copy is live iff its key is not claimed by
// any earlier step. Intervals are bounded by branch points ("the
// version-first scanner must be efficient in how it reads records as it
// traverses the ancestor files"), which is what lets a sibling's
// post-fork modifications outrank an ancestor's pre-fork copies.
type interval struct {
	Seg      segID
	From, To int64
}

type intervalKey = interval

// step is one element of a lineage: either a slot interval or a merged
// segment's override table. Overrides are the merge-time resolutions a
// pure segment ordering cannot express (e.g. a key whose churn on one
// side nets out to "unchanged" but still left tombstones that would
// wrongly outrank the other side's change). They rank exactly where
// they were created: after the merged segment's own records, before its
// parents.
type step struct {
	iv    interval
	ovr   segID
	isOvr bool
}

// override is one merge-time resolution: the key's winning copy (an
// existing position, preserving copy identity) or its deletion.
type override struct {
	PK      int64 `json:"pk"`
	Seg     segID `json:"seg"`
	Slot    int64 `json:"slot"`
	Deleted bool  `json:"deleted,omitempty"`
}

// tableEntry is the newest state of one key within an interval.
type tableEntry struct {
	Slot      int64
	Tombstone bool
}

// intervalTable maps each primary key appearing in an interval to its
// newest copy in that interval. This is the "in-memory hash table ...
// for each portion of each segment file" of the paper's multi-branch
// scanner; single-branch scans reuse the same tables through the cache.
type intervalTable map[int64]tableEntry

// lineageAt computes the ordered step list for the version at p.
//
// Rules (Section 3.3):
//   - a segment's own records [0, cut) rank first, then its merge
//     overrides (if any);
//   - below them, for a plain branch point, the parent's lineage
//     clipped at the branch offset;
//   - for a merge, the two parents' lineages minus their common (LCA)
//     coverage — ordered by the recorded precedence — and then the LCA
//     lineage itself.
//
// A final pass subtracts already-covered slot ranges (and deduplicates
// override tables) so each range appears exactly once, at its highest
// rank. Proper range subtraction matters: after chained merges the same
// segment can surface first as a middle slice and later as a wider
// range whose upper part is still uncovered.
func (e *Engine) lineageAt(p pos) ([]step, error) {
	raw, err := e.rawLineage(p)
	if err != nil {
		return nil, err
	}
	covered := make(map[segID]*spanSet)
	ovrDone := make(map[segID]bool)
	var out []step
	for _, st := range raw {
		if st.isOvr {
			if !ovrDone[st.ovr] {
				ovrDone[st.ovr] = true
				out = append(out, st)
			}
			continue
		}
		iv := st.iv
		ss := covered[iv.Seg]
		if ss == nil {
			ss = &spanSet{}
			covered[iv.Seg] = ss
		}
		for _, piece := range ss.subtract(iv.From, iv.To) {
			out = append(out, step{iv: interval{Seg: iv.Seg, From: piece.from, To: piece.to}})
		}
		ss.add(iv.From, iv.To)
	}
	return out, nil
}

// maxLineMemo bounds the rawLineage memo; the map is cleared wholesale
// when it fills (entries are cheap to recompute one level at a time).
const maxLineMemo = 8192

// rawLineage returns the rank-ordered steps, possibly overlapping,
// memoized per position when the lineage cache is enabled: a
// position's raw lineage depends only on immutable links and override
// tables (see cache.go for the validity argument), and the recursion
// re-visits the same parent and LCA positions at every merge level, so
// memoization makes chained merges linear instead of quadratic.
func (e *Engine) rawLineage(p pos) ([]step, error) {
	if e.lineMemo == nil {
		return e.rawLineageUncached(p)
	}
	if steps, ok := e.lineMemo[p]; ok {
		return steps, nil
	}
	steps, err := e.rawLineageUncached(p)
	if err != nil {
		return nil, err
	}
	if len(e.lineMemo) >= maxLineMemo {
		clear(e.lineMemo)
	}
	e.lineMemo[p] = steps
	return steps, nil
}

// rawLineageUncached computes the rank-ordered steps from the segment
// links; recursive calls go through the memoized rawLineage.
func (e *Engine) rawLineageUncached(p pos) ([]step, error) {
	if int(p.Seg) >= len(e.segs) {
		return nil, fmt.Errorf("vf: segment %d out of range", p.Seg)
	}
	s := e.segs[p.Seg]
	out := []step{{iv: interval{Seg: p.Seg, From: 0, To: p.Slot}}}
	if len(s.overrides) > 0 {
		out = append(out, step{ovr: p.Seg, isOvr: true})
	}
	if !s.hasLink {
		return out, nil
	}
	l := s.link
	if !l.IsMerge {
		parent, err := e.rawLineage(pos{Seg: l.ParentSeg, Slot: l.ParentSlot})
		if err != nil {
			return nil, err
		}
		return append(out, parent...), nil
	}

	// Merge: split both parents into their post-LCA unique parts and the
	// shared pre-LCA lineage.
	lcaPos, ok := e.commits[l.LCACommit]
	if !ok {
		return nil, fmt.Errorf("vf: merge LCA commit %d has no recorded offset", l.LCACommit)
	}
	common, err := e.rawLineage(lcaPos)
	if err != nil {
		return nil, err
	}
	coverage := make(map[segID]int64) // max 'To' covered by common, per segment
	for _, st := range common {
		if !st.isOvr && st.iv.To > coverage[st.iv.Seg] {
			coverage[st.iv.Seg] = st.iv.To
		}
	}
	clip := func(steps []step) []step {
		var u []step
		for _, st := range steps {
			if st.isOvr {
				// An override ranks chronologically before its segment's
				// first record; if the common lineage covers any prefix of
				// that segment, the override belongs to the common part.
				if coverage[st.ovr] == 0 {
					u = append(u, st)
				}
				continue
			}
			iv := st.iv
			from := iv.From
			if c := coverage[iv.Seg]; c > from {
				from = c
			}
			if from < iv.To {
				u = append(u, step{iv: interval{Seg: iv.Seg, From: from, To: iv.To}})
			}
		}
		return u
	}
	first, err := e.rawLineage(pos{Seg: l.ParentSeg, Slot: l.ParentSlot})
	if err != nil {
		return nil, err
	}
	second, err := e.rawLineage(pos{Seg: l.OtherSeg, Slot: l.OtherSlot})
	if err != nil {
		return nil, err
	}
	uniqFirst, uniqSecond := clip(first), clip(second)
	if l.PrecedenceFirst {
		out = append(out, uniqFirst...)
		out = append(out, uniqSecond...)
	} else {
		out = append(out, uniqSecond...)
		out = append(out, uniqFirst...)
	}
	return append(out, common...), nil
}

// invalidateSeg drops cached tables whose interval touches the segment
// (head segments grow; their open-ended tables go stale).
func (e *Engine) invalidateSeg(id segID) {
	for k := range e.cache {
		if k.Seg == id {
			delete(e.cache, k)
		}
	}
}

// table returns the interval's key table, building and caching it with
// one sequential scan of the slot range. Within an interval the newest
// copy of a key wins (updates append new copies; deletes append
// tombstones).
func (e *Engine) table(iv interval) (intervalTable, error) {
	if t, ok := e.cache[iv]; ok {
		return t, nil
	}
	t := make(intervalTable)
	// Key extraction is schema-version-free: the primary key and the
	// tombstone flag sit at fixed offsets in every physical layout.
	err := e.segs[iv.Seg].File.Scan(iv.From, iv.To, func(slot int64, buf []byte) bool {
		t[record.PKOf(buf)] = tableEntry{Slot: slot, Tombstone: record.TombstoneOf(buf)}
		return true
	})
	if err != nil {
		return nil, err
	}
	e.cache[iv] = t
	return t, nil
}

// resolveLive returns the live set (pk -> record copy position) of the
// version at p. The returned map is SHARED with the cache and with
// other callers — it must be treated as read-only.
//
// Resolution is tiered: an exact-position cache hit returns the cached
// map; a miss with a cached base lower in the same segment clones the
// base and overlays only the slot window between the two cuts (commit
// windows apply through their recorded RLE deltas, gaps through
// interval tables); a cold miss pays the full lineage walk and primes
// the cache. With the cache disabled every call takes the full walk.
// Caller holds e.mu.
func (e *Engine) resolveLive(p pos) (map[int64]pos, error) {
	if e.lcache == nil {
		return e.resolveLiveFull(p)
	}
	if m := e.lcache.get(p); m != nil {
		vfCacheHits.Add(1)
		return m, nil
	}
	vfCacheMisses.Add(1)
	if int(p.Seg) >= len(e.segs) {
		return nil, fmt.Errorf("vf: segment %d out of range", p.Seg)
	}
	if base := e.lcache.base(p.Seg, p.Slot); base != nil {
		vfDeltaResolves.Add(1)
		live := make(map[int64]pos, len(base.live)+int(p.Slot-base.pos.Slot)/2)
		for pk, q := range base.live {
			live[pk] = q
		}
		if err := e.applyWindowLocked(live, p.Seg, base.pos.Slot, p.Slot); err != nil {
			return nil, err
		}
		e.lcache.put(p, live)
		return live, nil
	}
	live, err := e.resolveLiveFull(p)
	if err != nil {
		return nil, err
	}
	e.lcache.put(p, live)
	return live, nil
}

// invalidateResolvedLocked drops every cached resolution and memoized
// lineage rooted at the segment. Two callers: Merge, whose new head
// segment gains overrides after its first resolution; and compaction,
// which replaces segment objects (slot numbering is preserved, so the
// drop is conservative rather than required — see cache.go). Caller
// holds e.mu.
func (e *Engine) invalidateResolvedLocked(id segID) {
	if e.lcache != nil {
		e.lcache.invalidateSeg(id)
	}
	// Scan plans can reference any number of segments, so the plan tier
	// is cleared wholesale rather than filtered by root.
	if e.pcache != nil {
		e.pcache.clear()
	}
	for p := range e.lineMemo {
		if p.Seg == id {
			delete(e.lineMemo, p)
		}
	}
}

// resolveLiveFull computes the live set with a full lineage walk: the
// steps in rank order, first claim of a key wins, tombstones and
// deletion overrides claim without contributing a live copy. Caller
// holds e.mu.
func (e *Engine) resolveLiveFull(p pos) (map[int64]pos, error) {
	lineage, err := e.lineageAt(p)
	if err != nil {
		return nil, err
	}
	live := make(map[int64]pos)
	seen := make(map[int64]bool)
	for _, st := range lineage {
		if st.isOvr {
			for _, ov := range e.segs[st.ovr].overrides {
				if seen[ov.PK] {
					continue
				}
				seen[ov.PK] = true
				if !ov.Deleted {
					live[ov.PK] = pos{Seg: ov.Seg, Slot: ov.Slot}
				}
			}
			continue
		}
		t, err := e.table(st.iv)
		if err != nil {
			return nil, err
		}
		for pk, en := range t {
			if seen[pk] {
				continue
			}
			seen[pk] = true
			if !en.Tombstone {
				live[pk] = pos{Seg: st.iv.Seg, Slot: en.Slot}
			}
		}
	}
	return live, nil
}

// stepEq reports whether two lineage steps are the same step: the same
// override table, or the same slot interval of the same segment.
func stepEq(a, b step) bool {
	if a.isOvr != b.isOvr {
		return false
	}
	if a.isOvr {
		return a.ovr == b.ovr
	}
	return a.iv == b.iv
}

// diffLiveLocked computes the two exclusive sides of diff(A, B) — the
// record copies live in exactly one of the two positions — from the
// lineage delta instead of a full comparison of both live maps.
//
// The two step lists share their ancestry as a common suffix. A key
// not claimed by any step above that suffix resolves through the same
// first-claiming suffix step on both sides, so its outcome is
// identical and it cannot appear in the diff. The candidate set is
// therefore the keys claimed by the non-common steps of either side —
// for a branch freshly forked off an unchanged parent, just the keys
// touched in the fork's own head — and only candidates pay the
// per-key live-map comparison. Clipping can shorten the detected
// suffix (the two sides subtract different coverage from shared
// ranges), which only grows the candidate set, never drops a
// differing key. Caller holds e.mu.
func (e *Engine) diffLiveLocked(pa, pb pos) (onlyA, onlyB map[int64]pos, err error) {
	la, err := e.resolveLive(pa)
	if err != nil {
		return nil, nil, err
	}
	lb, err := e.resolveLive(pb)
	if err != nil {
		return nil, nil, err
	}
	stepsA, err := e.lineageAt(pa)
	if err != nil {
		return nil, nil, err
	}
	stepsB, err := e.lineageAt(pb)
	if err != nil {
		return nil, nil, err
	}
	i, j := len(stepsA), len(stepsB)
	for i > 0 && j > 0 && stepEq(stepsA[i-1], stepsB[j-1]) {
		i--
		j--
	}
	onlyA = make(map[int64]pos)
	onlyB = make(map[int64]pos)
	seen := make(map[int64]bool)
	check := func(pk int64) {
		if seen[pk] {
			return
		}
		seen[pk] = true
		qa, okA := la[pk]
		qb, okB := lb[pk]
		if okA && (!okB || qa != qb) {
			onlyA[pk] = qa
		}
		if okB && (!okA || qa != qb) {
			onlyB[pk] = qb
		}
	}
	collect := func(steps []step) error {
		for _, st := range steps {
			if st.isOvr {
				for _, ov := range e.segs[st.ovr].overrides {
					check(ov.PK)
				}
				continue
			}
			t, err := e.table(st.iv)
			if err != nil {
				return err
			}
			for pk := range t {
				check(pk)
			}
		}
		return nil
	}
	if err := collect(stepsA[:i]); err != nil {
		return nil, nil, err
	}
	if err := collect(stepsB[:j]); err != nil {
		return nil, nil, err
	}
	return onlyA, onlyB, nil
}

// span is a half-open slot range.
type span struct{ from, to int64 }

// spanSet is a sorted set of disjoint spans.
type spanSet struct{ spans []span }

// subtract returns the pieces of [from, to) not covered by the set, in
// ascending order.
func (s *spanSet) subtract(from, to int64) []span {
	var out []span
	cur := from
	for _, sp := range s.spans {
		if sp.to <= cur {
			continue
		}
		if sp.from >= to {
			break
		}
		if sp.from > cur {
			out = append(out, span{from: cur, to: minI64(sp.from, to)})
		}
		if sp.to > cur {
			cur = sp.to
		}
		if cur >= to {
			return out
		}
	}
	if cur < to {
		out = append(out, span{from: cur, to: to})
	}
	return out
}

// add merges [from, to) into the set.
func (s *spanSet) add(from, to int64) {
	if from >= to {
		return
	}
	var merged []span
	inserted := false
	for _, sp := range s.spans {
		switch {
		case sp.to < from:
			merged = append(merged, sp)
		case sp.from > to:
			if !inserted {
				merged = append(merged, span{from, to})
				inserted = true
			}
			merged = append(merged, sp)
		default: // overlap or adjacency: absorb
			if sp.from < from {
				from = sp.from
			}
			if sp.to > to {
				to = sp.to
			}
		}
	}
	if !inserted {
		merged = append(merged, span{from, to})
	}
	s.spans = merged
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
