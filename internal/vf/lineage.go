package vf

import (
	"fmt"

	"decibel/internal/record"
)

// interval is a half-open slot range [From, To) of one segment. A
// branch's lineage is an ordered list of steps: earlier steps shadow
// later ones, so a record copy is live iff its key is not claimed by
// any earlier step. Intervals are bounded by branch points ("the
// version-first scanner must be efficient in how it reads records as it
// traverses the ancestor files"), which is what lets a sibling's
// post-fork modifications outrank an ancestor's pre-fork copies.
type interval struct {
	Seg      segID
	From, To int64
}

type intervalKey = interval

// step is one element of a lineage: either a slot interval or a merged
// segment's override table. Overrides are the merge-time resolutions a
// pure segment ordering cannot express (e.g. a key whose churn on one
// side nets out to "unchanged" but still left tombstones that would
// wrongly outrank the other side's change). They rank exactly where
// they were created: after the merged segment's own records, before its
// parents.
type step struct {
	iv    interval
	ovr   segID
	isOvr bool
}

// override is one merge-time resolution: the key's winning copy (an
// existing position, preserving copy identity) or its deletion.
type override struct {
	PK      int64 `json:"pk"`
	Seg     segID `json:"seg"`
	Slot    int64 `json:"slot"`
	Deleted bool  `json:"deleted,omitempty"`
}

// tableEntry is the newest state of one key within an interval.
type tableEntry struct {
	Slot      int64
	Tombstone bool
}

// intervalTable maps each primary key appearing in an interval to its
// newest copy in that interval. This is the "in-memory hash table ...
// for each portion of each segment file" of the paper's multi-branch
// scanner; single-branch scans reuse the same tables through the cache.
type intervalTable map[int64]tableEntry

// lineageAt computes the ordered step list for the version at p.
//
// Rules (Section 3.3):
//   - a segment's own records [0, cut) rank first, then its merge
//     overrides (if any);
//   - below them, for a plain branch point, the parent's lineage
//     clipped at the branch offset;
//   - for a merge, the two parents' lineages minus their common (LCA)
//     coverage — ordered by the recorded precedence — and then the LCA
//     lineage itself.
//
// A final pass subtracts already-covered slot ranges (and deduplicates
// override tables) so each range appears exactly once, at its highest
// rank. Proper range subtraction matters: after chained merges the same
// segment can surface first as a middle slice and later as a wider
// range whose upper part is still uncovered.
func (e *Engine) lineageAt(p pos) ([]step, error) {
	raw, err := e.rawLineage(p)
	if err != nil {
		return nil, err
	}
	covered := make(map[segID]*spanSet)
	ovrDone := make(map[segID]bool)
	var out []step
	for _, st := range raw {
		if st.isOvr {
			if !ovrDone[st.ovr] {
				ovrDone[st.ovr] = true
				out = append(out, st)
			}
			continue
		}
		iv := st.iv
		ss := covered[iv.Seg]
		if ss == nil {
			ss = &spanSet{}
			covered[iv.Seg] = ss
		}
		for _, piece := range ss.subtract(iv.From, iv.To) {
			out = append(out, step{iv: interval{Seg: iv.Seg, From: piece.from, To: piece.to}})
		}
		ss.add(iv.From, iv.To)
	}
	return out, nil
}

// rawLineage returns the rank-ordered steps, possibly overlapping.
func (e *Engine) rawLineage(p pos) ([]step, error) {
	if int(p.Seg) >= len(e.segs) {
		return nil, fmt.Errorf("vf: segment %d out of range", p.Seg)
	}
	s := e.segs[p.Seg]
	out := []step{{iv: interval{Seg: p.Seg, From: 0, To: p.Slot}}}
	if len(s.overrides) > 0 {
		out = append(out, step{ovr: p.Seg, isOvr: true})
	}
	if !s.hasLink {
		return out, nil
	}
	l := s.link
	if !l.IsMerge {
		parent, err := e.rawLineage(pos{Seg: l.ParentSeg, Slot: l.ParentSlot})
		if err != nil {
			return nil, err
		}
		return append(out, parent...), nil
	}

	// Merge: split both parents into their post-LCA unique parts and the
	// shared pre-LCA lineage.
	lcaPos, ok := e.commits[l.LCACommit]
	if !ok {
		return nil, fmt.Errorf("vf: merge LCA commit %d has no recorded offset", l.LCACommit)
	}
	common, err := e.rawLineage(lcaPos)
	if err != nil {
		return nil, err
	}
	coverage := make(map[segID]int64) // max 'To' covered by common, per segment
	for _, st := range common {
		if !st.isOvr && st.iv.To > coverage[st.iv.Seg] {
			coverage[st.iv.Seg] = st.iv.To
		}
	}
	clip := func(steps []step) []step {
		var u []step
		for _, st := range steps {
			if st.isOvr {
				// An override ranks chronologically before its segment's
				// first record; if the common lineage covers any prefix of
				// that segment, the override belongs to the common part.
				if coverage[st.ovr] == 0 {
					u = append(u, st)
				}
				continue
			}
			iv := st.iv
			from := iv.From
			if c := coverage[iv.Seg]; c > from {
				from = c
			}
			if from < iv.To {
				u = append(u, step{iv: interval{Seg: iv.Seg, From: from, To: iv.To}})
			}
		}
		return u
	}
	first, err := e.rawLineage(pos{Seg: l.ParentSeg, Slot: l.ParentSlot})
	if err != nil {
		return nil, err
	}
	second, err := e.rawLineage(pos{Seg: l.OtherSeg, Slot: l.OtherSlot})
	if err != nil {
		return nil, err
	}
	uniqFirst, uniqSecond := clip(first), clip(second)
	if l.PrecedenceFirst {
		out = append(out, uniqFirst...)
		out = append(out, uniqSecond...)
	} else {
		out = append(out, uniqSecond...)
		out = append(out, uniqFirst...)
	}
	return append(out, common...), nil
}

// invalidateSeg drops cached tables whose interval touches the segment
// (head segments grow; their open-ended tables go stale).
func (e *Engine) invalidateSeg(id segID) {
	for k := range e.cache {
		if k.Seg == id {
			delete(e.cache, k)
		}
	}
}

// table returns the interval's key table, building and caching it with
// one sequential scan of the slot range. Within an interval the newest
// copy of a key wins (updates append new copies; deletes append
// tombstones).
func (e *Engine) table(iv interval) (intervalTable, error) {
	if t, ok := e.cache[iv]; ok {
		return t, nil
	}
	t := make(intervalTable)
	// Key extraction is schema-version-free: the primary key and the
	// tombstone flag sit at fixed offsets in every physical layout.
	err := e.segs[iv.Seg].File.Scan(iv.From, iv.To, func(slot int64, buf []byte) bool {
		t[record.PKOf(buf)] = tableEntry{Slot: slot, Tombstone: record.TombstoneOf(buf)}
		return true
	})
	if err != nil {
		return nil, err
	}
	e.cache[iv] = t
	return t, nil
}

// resolveLive computes the live set (pk -> record copy position) of the
// version at p: walk the lineage steps in rank order, first claim of a
// key wins, tombstones and deletion overrides claim without
// contributing a live copy. Caller holds e.mu.
func (e *Engine) resolveLive(p pos) (map[int64]pos, error) {
	lineage, err := e.lineageAt(p)
	if err != nil {
		return nil, err
	}
	live := make(map[int64]pos)
	seen := make(map[int64]bool)
	for _, st := range lineage {
		if st.isOvr {
			for _, ov := range e.segs[st.ovr].overrides {
				if seen[ov.PK] {
					continue
				}
				seen[ov.PK] = true
				if !ov.Deleted {
					live[ov.PK] = pos{Seg: ov.Seg, Slot: ov.Slot}
				}
			}
			continue
		}
		t, err := e.table(st.iv)
		if err != nil {
			return nil, err
		}
		for pk, en := range t {
			if seen[pk] {
				continue
			}
			seen[pk] = true
			if !en.Tombstone {
				live[pk] = pos{Seg: st.iv.Seg, Slot: en.Slot}
			}
		}
	}
	return live, nil
}

// span is a half-open slot range.
type span struct{ from, to int64 }

// spanSet is a sorted set of disjoint spans.
type spanSet struct{ spans []span }

// subtract returns the pieces of [from, to) not covered by the set, in
// ascending order.
func (s *spanSet) subtract(from, to int64) []span {
	var out []span
	cur := from
	for _, sp := range s.spans {
		if sp.to <= cur {
			continue
		}
		if sp.from >= to {
			break
		}
		if sp.from > cur {
			out = append(out, span{from: cur, to: minI64(sp.from, to)})
		}
		if sp.to > cur {
			cur = sp.to
		}
		if cur >= to {
			return out
		}
	}
	if cur < to {
		out = append(out, span{from: cur, to: to})
	}
	return out
}

// add merges [from, to) into the set.
func (s *spanSet) add(from, to int64) {
	if from >= to {
		return
	}
	var merged []span
	inserted := false
	for _, sp := range s.spans {
		switch {
		case sp.to < from:
			merged = append(merged, sp)
		case sp.from > to:
			if !inserted {
				merged = append(merged, span{from, to})
				inserted = true
			}
			merged = append(merged, sp)
		default: // overlap or adjacency: absorb
			if sp.from < from {
				from = sp.from
			}
			if sp.to > to {
				to = sp.to
			}
		}
	}
	if !inserted {
		merged = append(merged, span{from, to})
	}
	s.spans = merged
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
