package vf

import (
	"fmt"
	"strings"

	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// DumpLineage renders the lineage of a branch head for diagnostics.
func (e *Engine) DumpLineage(b vgraph.BranchID) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, cut, err := e.headLocked(b)
	if err != nil {
		return err.Error()
	}
	steps, err := e.lineageAt(pos{Seg: s.id, Slot: cut})
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "branch %d head seg%d cut %d\n", b, s.id, cut)
	for i, st := range steps {
		if st.isOvr {
			fmt.Fprintf(&sb, "  [%d] overrides of seg%d: %v\n", i, st.ovr, e.segs[st.ovr].overrides)
		} else {
			fmt.Fprintf(&sb, "  [%d] seg%d [%d,%d)\n", i, st.iv.Seg, st.iv.From, st.iv.To)
		}
	}
	for _, sg := range e.segs {
		lk := ""
		if sg.hasLink {
			l := sg.link
			if l.IsMerge {
				lk = fmt.Sprintf(" merge(parent seg%d@%d c%d, other seg%d@%d c%d, lca c%d, precFirst=%v)",
					l.ParentSeg, l.ParentSlot, l.ParentCommit, l.OtherSeg, l.OtherSlot, l.OtherCommit, l.LCACommit, l.PrecedenceFirst)
			} else {
				lk = fmt.Sprintf(" from(seg%d@%d c%d)", l.ParentSeg, l.ParentSlot, l.ParentCommit)
			}
		}
		fmt.Fprintf(&sb, "  seg%d branch=%d count=%d ovr=%d%s\n", sg.id, sg.branch, sg.File.Count(), len(sg.overrides), lk)
	}
	return sb.String()
}

// DumpKey renders every physical copy of a primary key for diagnostics.
func (e *Engine) DumpKey(pk int64) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sb strings.Builder
	for _, s := range e.segs {
		rec := record.New(s.Schema)
		n := s.File.Count()
		for slot := int64(0); slot < n; slot++ {
			if err := s.File.Read(slot, rec.Bytes()); err != nil {
				continue
			}
			if rec.PK() == pk {
				fmt.Fprintf(&sb, "  copy seg%d@%d tomb=%v %v\n", s.id, slot, rec.Tombstone(), rec.String())
			}
		}
		for _, ov := range s.overrides {
			if ov.PK == pk {
				fmt.Fprintf(&sb, "  override in seg%d -> seg%d@%d del=%v\n", s.id, ov.Seg, ov.Slot, ov.Deleted)
			}
		}
	}
	return sb.String()
}
