package vf

import (
	"encoding/binary"
	"expvar"
	"os"
	"strconv"
	"sync/atomic"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
)

// Lineage/live-set cache. Version-first's read cost is dominated by
// resolution: every query walks the branch lineage and folds each
// interval's key table into a fresh live map, so a multi-branch scan
// over k branches re-derives k near-identical maps per request. The
// cache exploits the scheme's append-only physics: the resolution of a
// position (seg, slot) depends only on record slots below it, on
// parent links written once at segment creation, and on override
// tables fixed when a merge completes — all immutable — so an entry
// for an exact position stays valid for the life of the engine. A
// branch head's resolution is the entry at its current (seg, cut);
// each commit or append moves the cut to a fresh key, so head entries
// are never stale, merely superseded (the LRU reclaims them).
//
// Two invalidation exceptions, both handled by invalidateResolvedLocked:
//   - a merge fills the new head segment's override table after its
//     first (pre-override) resolution, so the merge drops entries
//     rooted at the segment it created;
//   - compaction replaces segment objects (slot numbering preserved,
//     so cached positions would stay readable) but drops entries rooted
//     at replaced segments anyway, keeping the cache's validity
//     argument independent of the re-encoder's internals.
//
// Resolution cost is amortized three ways:
//   - an exact-position hit returns the shared, read-only live map;
//   - a miss with a cached base lower in the same segment clones the
//     base and applies only the slot window between the two cuts — the
//     per-commit RLE delta log (below) reads just the claiming slots;
//   - a cold miss pays the full lineage walk, with rawLineage results
//     memoized per position so chained merges resolve shared
//     sub-lineages (the LCA walks) once instead of once per merge
//     level.

// Cache counters (expvar decibel.vf.*). The equivalence harness
// asserts hits move while the cache is enabled, so a silently bypassed
// cache cannot pass.
var (
	vfCacheHits      atomic.Int64
	vfCacheMisses    atomic.Int64
	vfCacheEvictions atomic.Int64
	vfDeltaResolves  atomic.Int64
)

func init() {
	expvar.Publish("decibel.vf.lineage_cache_hits", expvar.Func(func() any { return vfCacheHits.Load() }))
	expvar.Publish("decibel.vf.lineage_cache_misses", expvar.Func(func() any { return vfCacheMisses.Load() }))
	expvar.Publish("decibel.vf.lineage_cache_evictions", expvar.Func(func() any { return vfCacheEvictions.Load() }))
	expvar.Publish("decibel.vf.delta_resolves", expvar.Func(func() any { return vfDeltaResolves.Load() }))
}

// CacheCounters returns the cumulative lineage-cache counters:
// exact-position hits, misses, LRU evictions and resolutions served
// incrementally from a same-segment base.
func CacheCounters() (hits, misses, evictions, deltaResolves int64) {
	return vfCacheHits.Load(), vfCacheMisses.Load(), vfCacheEvictions.Load(), vfDeltaResolves.Load()
}

// DefaultCacheBudget is the default bound on the live-set cache:
// the total number of resident keys (the sum of live-map sizes across
// entries), the quantity that actually occupies memory.
const DefaultCacheBudget = 1 << 18

// resolveCacheBudget picks the cache bound: a positive
// Options.VFLineageCache wins; a negative one disables the cache; zero
// falls through to the DECIBEL_VF_CACHE environment variable ("off",
// "0" or a negative number disable; a positive number is the budget)
// and then to DefaultCacheBudget.
func resolveCacheBudget(opt core.Options) int {
	n := opt.VFLineageCache
	if n == 0 {
		if s := os.Getenv("DECIBEL_VF_CACHE"); s != "" {
			if s == "off" {
				return 0
			}
			if v, err := strconv.Atoi(s); err == nil {
				n = v
				if v <= 0 {
					return 0
				}
			}
		}
	}
	if n < 0 {
		return 0
	}
	if n == 0 {
		return DefaultCacheBudget
	}
	return n
}

// liveEntry is one cached resolution: the shared, read-only live map
// of an exact position, on an LRU list.
type liveEntry struct {
	pos        pos
	live       map[int64]pos
	prev, next *liveEntry
}

// liveCache is the bounded position-keyed live-set cache. All access
// happens under the engine lock; the structure itself is not
// concurrency-safe.
type liveCache struct {
	budget   int // max resident keys; entries weigh max(1, len(live))
	resident int
	entries  map[pos]*liveEntry
	// newest tracks the highest-slot entry per segment: the preferred
	// base for incremental resolution of later cuts of the same head.
	newest map[segID]*liveEntry
	head   *liveEntry // most recently used
	tail   *liveEntry // least recently used
}

func newLiveCache(budget int) *liveCache {
	if budget <= 0 {
		return nil
	}
	return &liveCache{
		budget:  budget,
		entries: make(map[pos]*liveEntry),
		newest:  make(map[segID]*liveEntry),
	}
}

func entryWeight(en *liveEntry) int {
	if n := len(en.live); n > 0 {
		return n
	}
	return 1
}

func (c *liveCache) unlink(en *liveEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		c.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		c.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

func (c *liveCache) pushFront(en *liveEntry) {
	en.next = c.head
	if c.head != nil {
		c.head.prev = en
	}
	c.head = en
	if c.tail == nil {
		c.tail = en
	}
}

// get returns the live map cached for the exact position, or nil.
func (c *liveCache) get(p pos) map[int64]pos {
	en, ok := c.entries[p]
	if !ok {
		return nil
	}
	c.unlink(en)
	c.pushFront(en)
	return en.live
}

// base returns the cached entry for the same segment with the highest
// slot not exceeding maxSlot — the cheapest base an incremental
// resolution can extend — or nil.
func (c *liveCache) base(seg segID, maxSlot int64) *liveEntry {
	if en := c.newest[seg]; en != nil && en.pos.Slot <= maxSlot {
		return en
	}
	// The newest entry overshoots (a historical read below existing
	// entries): scan for the best lower one. Entry counts are bounded
	// by the budget, so this stays cheap and rare.
	var best *liveEntry
	for _, en := range c.entries {
		if en.pos.Seg == seg && en.pos.Slot <= maxSlot &&
			(best == nil || en.pos.Slot > best.pos.Slot) {
			best = en
		}
	}
	return best
}

// put inserts a resolution, evicting least-recently-used entries until
// the resident-key budget holds. The map becomes shared and must never
// be mutated afterwards.
func (c *liveCache) put(p pos, live map[int64]pos) {
	if old, ok := c.entries[p]; ok {
		c.remove(old)
	}
	en := &liveEntry{pos: p, live: live}
	c.entries[p] = en
	c.pushFront(en)
	c.resident += entryWeight(en)
	if cur := c.newest[p.Seg]; cur == nil || p.Slot >= cur.pos.Slot {
		c.newest[p.Seg] = en
	}
	for c.resident > c.budget && c.tail != nil && c.tail != en {
		vfCacheEvictions.Add(1)
		c.remove(c.tail)
	}
}

// remove drops an entry and fixes the newest index.
func (c *liveCache) remove(en *liveEntry) {
	delete(c.entries, en.pos)
	c.unlink(en)
	c.resident -= entryWeight(en)
	if c.newest[en.pos.Seg] == en {
		delete(c.newest, en.pos.Seg)
		for _, other := range c.entries {
			if other.pos.Seg == en.pos.Seg {
				if cur := c.newest[en.pos.Seg]; cur == nil || other.pos.Slot > cur.pos.Slot {
					c.newest[en.pos.Seg] = other
				}
			}
		}
	}
}

// invalidateSeg drops every entry rooted at the segment.
func (c *liveCache) invalidateSeg(id segID) {
	for p, en := range c.entries {
		if p.Seg == id {
			c.remove(en)
		}
	}
}

// Scan-plan cache: the second cache tier, above the live-set cache.
// Even with every resolution an exact-position hit, a scan still pays
// to regroup the live map by segment, sort each segment's slots, and —
// for multi-branch scans — rebuild the per-position membership bitmaps
// (k live maps folded into one union map) on every request. All of
// that is a pure function of the exact resolved positions, so the
// grouped, sorted, scan-ready form is cached under the position vector
// and a warm scan goes straight to pin + emit. Validity follows from
// the same immutability argument as the live-set cache; the whole tier
// is cleared by invalidateResolvedLocked (merge, compaction) since its
// entries can span many segments, and entries keyed by superseded cuts
// simply age out of the LRU.

// planGroup is one segment's share of a cached scan plan: the slots to
// emit, ascending. The slice is shared and read-only once cached.
type planGroup struct {
	id    segID
	slots []int64
}

// planEntry is one cached scan plan. groups is the only side for
// single-position and multi-branch scans; diffs carry side B in
// groupsB. member is the multi-branch membership map (position ->
// branch bitmap), shared and read-only once cached.
type planEntry struct {
	key        string
	groups     []planGroup
	groupsB    []planGroup
	member     map[pos]*bitmap.Bitmap
	weight     int
	prev, next *planEntry
}

// planCache is the bounded scan-plan cache, LRU over a resident-slot
// budget. All access happens under the engine lock.
type planCache struct {
	budget   int
	resident int
	entries  map[string]*planEntry
	head     *planEntry
	tail     *planEntry
}

func newPlanCache(budget int) *planCache {
	if budget <= 0 {
		return nil
	}
	return &planCache{budget: budget, entries: make(map[string]*planEntry)}
}

// planKey encodes a scan kind and its exact resolved positions. The
// vector keeps request order, so multi-branch membership bit indexes
// are part of the key and diff sides stay directional.
func planKey(kind byte, ps ...pos) string {
	b := make([]byte, 0, 1+len(ps)*12)
	b = append(b, kind)
	for _, p := range ps {
		b = binary.LittleEndian.AppendUint32(b, uint32(p.Seg))
		b = binary.LittleEndian.AppendUint64(b, uint64(p.Slot))
	}
	return string(b)
}

func planWeight(en *planEntry) int {
	w := len(en.member)
	for _, g := range en.groups {
		w += len(g.slots)
	}
	for _, g := range en.groupsB {
		w += len(g.slots)
	}
	if w == 0 {
		return 1
	}
	return w
}

func (c *planCache) unlink(en *planEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		c.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		c.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

func (c *planCache) pushFront(en *planEntry) {
	en.next = c.head
	if c.head != nil {
		c.head.prev = en
	}
	c.head = en
	if c.tail == nil {
		c.tail = en
	}
}

// get returns the cached plan for the key, or nil.
func (c *planCache) get(key string) *planEntry {
	en, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.unlink(en)
	c.pushFront(en)
	return en
}

// put inserts a plan, evicting least-recently-used entries until the
// budget holds. The entry's slices and maps become shared and must
// never be mutated afterwards.
func (c *planCache) put(en *planEntry) {
	if old, ok := c.entries[en.key]; ok {
		c.remove(old)
	}
	en.weight = planWeight(en)
	c.entries[en.key] = en
	c.pushFront(en)
	c.resident += en.weight
	for c.resident > c.budget && c.tail != nil && c.tail != en {
		vfCacheEvictions.Add(1)
		c.remove(c.tail)
	}
}

func (c *planCache) remove(en *planEntry) {
	delete(c.entries, en.key)
	c.unlink(en)
	c.resident -= en.weight
}

// clear drops every cached plan.
func (c *planCache) clear() {
	if len(c.entries) == 0 {
		return
	}
	c.entries = make(map[string]*planEntry)
	c.head, c.tail = nil, nil
	c.resident = 0
}

// segDelta is one commit's live-set delta on a head segment: the RLE
// bitmap (internal/bitmap) over the slot window [From, To) marking the
// slots that are the newest copy of their key within the window — the
// claims the window contributes to any resolution above it. Shadowed
// copies (a key updated twice in one commit) carry no bit, and
// tombstone slots are marked like claims (they claim the key as dead).
type segDelta struct {
	From, To int64
	RLE      []byte
}

// maxDeltasPerSeg bounds the in-memory delta log of one segment. A
// base older than the retained window falls back to a plain slot scan
// of the gap, so the bound trades memory for the incremental window
// depth, not correctness.
const maxDeltasPerSeg = 128

// recordDeltaLocked appends the RLE delta of the head segment's
// newly committed window [deltaTail, cut) to its delta log. Caller
// holds e.mu.
func (e *Engine) recordDeltaLocked(id segID, cut int64) error {
	from := e.deltaTail[id]
	if cut <= from {
		return nil
	}
	e.deltaTail[id] = cut
	t, err := e.table(interval{Seg: id, From: from, To: cut})
	if err != nil {
		return err
	}
	bm := bitmap.New(int(cut - from))
	for _, en := range t {
		bm.Set(int(en.Slot - from))
	}
	log := append(e.deltas[id], segDelta{From: from, To: cut, RLE: bitmap.MarshalRLE(bm)})
	if len(log) > maxDeltasPerSeg {
		log = log[len(log)-maxDeltasPerSeg:]
	}
	e.deltas[id] = log
	return nil
}

// applyWindowLocked overlays the segment's slot window [from, to) onto
// live: within the window the newest copy of each key wins, and the
// window as a whole outranks everything already in live (newer slots
// of the same segment rank above all older claims). Recorded commit
// deltas that tile the window are applied by reading only their marked
// slots; gaps (uncommitted tails, or windows older than the retained
// delta log) fall back to the interval's key table. Caller holds e.mu.
func (e *Engine) applyWindowLocked(live map[int64]pos, id segID, from, to int64) error {
	deltas := e.deltas[id]
	// Skip deltas entirely below the window.
	i := 0
	for i < len(deltas) && deltas[i].To <= from {
		i++
	}
	cur := from
	for cur < to {
		if i < len(deltas) && deltas[i].From == cur && deltas[i].To <= to {
			if err := e.applyDeltaLocked(live, id, deltas[i]); err != nil {
				return err
			}
			cur = deltas[i].To
			i++
			continue
		}
		// Gap: apply via the interval table (cached when the same gap
		// recurs, e.g. the uncommitted tail between two scans).
		gapEnd := to
		if i < len(deltas) && deltas[i].From > cur && deltas[i].From < to {
			gapEnd = deltas[i].From
		}
		t, err := e.table(interval{Seg: id, From: cur, To: gapEnd})
		if err != nil {
			return err
		}
		for pk, en := range t {
			if en.Tombstone {
				delete(live, pk)
			} else {
				live[pk] = pos{Seg: id, Slot: en.Slot}
			}
		}
		cur = gapEnd
	}
	return nil
}

// applyDeltaLocked decodes one RLE commit delta and applies the
// records at its marked slots, reading each contiguous marked run with
// one page-run scan. Caller holds e.mu.
func (e *Engine) applyDeltaLocked(live map[int64]pos, id segID, d segDelta) error {
	bm, _, err := bitmap.DecodeRLE(d.RLE)
	if err != nil {
		return err
	}
	s := e.segs[id]
	n := int(d.To - d.From)
	for i := 0; i < n; {
		if !bm.Get(i) {
			i++
			continue
		}
		j := i + 1
		for j < n && bm.Get(j) {
			j++
		}
		err := s.File.Scan(d.From+int64(i), d.From+int64(j), func(slot int64, buf []byte) bool {
			pk := record.PKOf(buf)
			if record.TombstoneOf(buf) {
				delete(live, pk)
			} else {
				live[pk] = pos{Seg: id, Slot: slot}
			}
			return true
		})
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}
