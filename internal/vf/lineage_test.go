package vf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpanSetSubtractEmpty(t *testing.T) {
	var ss spanSet
	got := ss.subtract(3, 10)
	if len(got) != 1 || got[0] != (span{3, 10}) {
		t.Fatalf("subtract on empty = %v", got)
	}
	if got := ss.subtract(5, 5); len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestSpanSetSubtractPieces(t *testing.T) {
	var ss spanSet
	ss.add(10, 20)
	ss.add(30, 40)
	cases := []struct {
		from, to int64
		want     []span
	}{
		{0, 5, []span{{0, 5}}},                       // fully outside
		{10, 20, nil},                                // fully covered
		{12, 18, nil},                                // inside covered
		{5, 15, []span{{5, 10}}},                     // left overhang
		{15, 25, []span{{20, 25}}},                   // right overhang
		{5, 45, []span{{5, 10}, {20, 30}, {40, 45}}}, // spans both holes
		{20, 30, []span{{20, 30}}},                   // exactly the gap
		{40, 50, []span{{40, 50}}},                   // after everything
	}
	for _, c := range cases {
		got := ss.subtract(c.from, c.to)
		if len(got) != len(c.want) {
			t.Fatalf("subtract(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("subtract(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
			}
		}
	}
}

func TestSpanSetAddMerges(t *testing.T) {
	var ss spanSet
	ss.add(10, 20)
	ss.add(30, 40)
	ss.add(15, 35) // bridges both
	if len(ss.spans) != 1 || ss.spans[0] != (span{10, 40}) {
		t.Fatalf("spans = %v", ss.spans)
	}
	ss.add(40, 50) // adjacency absorbs
	if len(ss.spans) != 1 || ss.spans[0] != (span{10, 50}) {
		t.Fatalf("adjacent add: %v", ss.spans)
	}
	ss.add(60, 60) // empty: no-op
	if len(ss.spans) != 1 {
		t.Fatalf("empty add changed set: %v", ss.spans)
	}
	ss.add(0, 5)
	if len(ss.spans) != 2 || ss.spans[0] != (span{0, 5}) {
		t.Fatalf("prepend: %v", ss.spans)
	}
}

// Property: a spanSet behaves like a boolean array under add/subtract.
func TestQuickSpanSetVsModel(t *testing.T) {
	const n = 128
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ss spanSet
		var model [n]bool
		for op := 0; op < 40; op++ {
			a := int64(r.Intn(n))
			b := a + int64(r.Intn(n-int(a)))
			// subtract must return exactly the uncovered sub-ranges.
			pieces := ss.subtract(a, b)
			covered := make([]bool, n)
			for _, p := range pieces {
				if p.from >= p.to {
					return false
				}
				for i := p.from; i < p.to; i++ {
					if covered[i] {
						return false // overlapping pieces
					}
					covered[i] = true
				}
			}
			for i := a; i < b; i++ {
				if model[i] == covered[i] {
					return false // covered bits must be the complement of the model within [a,b)
				}
			}
			ss.add(a, b)
			for i := a; i < b; i++ {
				model[i] = true
			}
		}
		// Final consistency: spans sorted, disjoint, matching the model.
		var prev span
		for i, sp := range ss.spans {
			if sp.from >= sp.to {
				return false
			}
			if i > 0 && sp.from < prev.to {
				return false
			}
			prev = sp
		}
		got := make([]bool, n)
		for _, sp := range ss.spans {
			for i := sp.from; i < sp.to && i < n; i++ {
				got[i] = true
			}
		}
		for i := 0; i < n; i++ {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinI64(t *testing.T) {
	if minI64(3, 5) != 3 || minI64(5, 3) != 3 || minI64(-1, 1) != -1 {
		t.Fatal("minI64 wrong")
	}
}
