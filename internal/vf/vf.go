// Package vf implements Decibel's version-first storage scheme
// (Section 3.3): each branch stores its local modifications in its own
// segment file; a child segment records a (parent file, offset) branch
// point; a chain of such segments constitutes the full lineage of a
// branch. Commits map commit IDs to offsets in the committing branch's
// segment. Deletes append tombstone records. Merges create a new head
// segment with two parent pointers and a recorded precedence.
package vf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"decibel/internal/core"
	"decibel/internal/heap"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// segID indexes the engine's segment table.
type segID int

// pos addresses one record copy: a segment and a slot within it.
type pos struct {
	Seg  segID `json:"seg"`
	Slot int64 `json:"slot"`
}

// link is a segment's parent pointer, written once at creation. Merge
// segments carry two parents plus the recorded LCA and precedence.
type link struct {
	ParentSeg    segID           `json:"parentSeg"`
	ParentSlot   int64           `json:"parentSlot"`
	ParentCommit vgraph.CommitID `json:"parentCommit"`

	IsMerge         bool            `json:"isMerge,omitempty"`
	OtherSeg        segID           `json:"otherSeg,omitempty"`
	OtherSlot       int64           `json:"otherSlot,omitempty"`
	OtherCommit     vgraph.CommitID `json:"otherCommit,omitempty"`
	LCACommit       vgraph.CommitID `json:"lcaCommit,omitempty"`
	PrecedenceFirst bool            `json:"precedenceFirst,omitempty"`
}

// segMeta is the persisted description of one segment. Cols is the
// segment's schema-version id: the number of physical columns its
// records are encoded with (0 in catalogs from before schema
// versioning, meaning the table's full layout).
type segMeta struct {
	ID        segID           `json:"id"`
	Branch    vgraph.BranchID `json:"branch"`
	HasLink   bool            `json:"hasLink"`
	Link      link            `json:"link"`
	SafeCount int64           `json:"safeCount"` // slots valid at last persist; reopen truncates past this
	Cols      int             `json:"cols,omitempty"`
	Overrides []override      `json:"overrides,omitempty"`
}

// meta is the engine's persisted catalog, rewritten atomically on every
// version-control operation (commit, branch, merge), which are the
// atomicity points of Section 2.2.3.
type meta struct {
	Segments []segMeta                 `json:"segments"`
	ByBranch map[vgraph.BranchID]segID `json:"byBranch"`
	Commits  map[vgraph.CommitID]pos   `json:"commits"`
}

// segment is the in-memory segment state.
type segment struct {
	id        segID
	branch    vgraph.BranchID
	file      *heap.File
	cols      int // physical schema columns records here are encoded with
	schema    *record.Schema
	hasLink   bool
	link      link
	overrides []override
}

// Engine is the version-first storage engine.
type Engine struct {
	mu   sync.Mutex
	env  *core.Env
	hist *record.History

	segs     []*segment
	byBranch map[vgraph.BranchID]segID
	commits  map[vgraph.CommitID]pos

	// cache holds resolved per-interval key tables for frozen intervals;
	// entries for a segment are dropped when it takes new appends.
	cache map[intervalKey]intervalTable

	insBuf []byte // storage-conversion scratch for appends; guarded by mu
}

func init() { core.RegisterEngine("version-first", Factory, "vf") }

// Factory builds a version-first engine; it satisfies core.Factory.
func Factory(env *core.Env) (core.Engine, error) {
	e := &Engine{
		env:      env,
		hist:     env.History(),
		byBranch: make(map[vgraph.BranchID]segID),
		commits:  make(map[vgraph.CommitID]pos),
		cache:    make(map[intervalKey]intervalTable),
	}
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// Kind implements core.Engine.
func (e *Engine) Kind() string { return "version-first" }

func (e *Engine) metaPath() string { return filepath.Join(e.env.Dir, "segments.json") }
func (e *Engine) segPath(id segID) string {
	return filepath.Join(e.env.Dir, fmt.Sprintf("seg%d.dat", id))
}

// persistLocked writes the catalog atomically; caller holds e.mu.
// A segment's SafeCount is the highest slot any commit or branch/merge
// link references: appends beyond it are uncommitted and roll back on
// reopen (Section 2.2.3 — updates are "rolled back if the client
// crashes or disconnects before committing").
func (e *Engine) persistLocked() error {
	safe := make(map[segID]int64, len(e.segs))
	for _, p := range e.commits {
		if p.Slot > safe[p.Seg] {
			safe[p.Seg] = p.Slot
		}
	}
	for _, s := range e.segs {
		if !s.hasLink {
			continue
		}
		if s.link.ParentSlot > safe[s.link.ParentSeg] {
			safe[s.link.ParentSeg] = s.link.ParentSlot
		}
		if s.link.IsMerge && s.link.OtherSlot > safe[s.link.OtherSeg] {
			safe[s.link.OtherSeg] = s.link.OtherSlot
		}
		for _, ov := range s.overrides {
			if !ov.Deleted && ov.Slot+1 > safe[ov.Seg] {
				safe[ov.Seg] = ov.Slot + 1
			}
		}
	}
	m := meta{ByBranch: e.byBranch, Commits: e.commits}
	for _, s := range e.segs {
		m.Segments = append(m.Segments, segMeta{
			ID: s.id, Branch: s.branch, HasLink: s.hasLink, Link: s.link,
			SafeCount: safe[s.id], Cols: s.cols, Overrides: s.overrides,
		})
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	tmp := e.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	if e.env.Opt.Fsync {
		for _, s := range e.segs {
			if err := s.file.Sync(); err != nil {
				return err
			}
		}
	} else {
		for _, s := range e.segs {
			if err := s.file.Flush(); err != nil {
				return err
			}
		}
	}
	return os.Rename(tmp, e.metaPath())
}

// recover loads the catalog and rolls back uncommitted appends by
// truncating each segment to its last persisted count.
func (e *Engine) recover() error {
	data, err := os.ReadFile(e.metaPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("vf: corrupt catalog: %w", err)
	}
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i].ID < m.Segments[j].ID })
	for _, sm := range m.Segments {
		cols := sm.Cols
		if cols == 0 {
			// Catalog from before schema versioning: the table has a
			// single version, so every segment uses the full layout.
			cols = e.hist.PhysCols()
		}
		schema, err := e.hist.PhysByCount(cols)
		if err != nil {
			return fmt.Errorf("vf: segment %d: %w", sm.ID, err)
		}
		f, err := heap.Open(e.env.Pool, e.segPath(sm.ID), schema.RecordSize())
		if err != nil {
			return err
		}
		if f.Count() > sm.SafeCount {
			if err := f.Truncate(sm.SafeCount); err != nil {
				return err
			}
		}
		e.segs = append(e.segs, &segment{
			id: sm.ID, branch: sm.Branch, file: f, cols: cols, schema: schema,
			hasLink: sm.HasLink, link: sm.Link, overrides: sm.Overrides,
		})
	}
	e.byBranch = m.ByBranch
	if e.byBranch == nil {
		e.byBranch = make(map[vgraph.BranchID]segID)
	}
	e.commits = m.Commits
	if e.commits == nil {
		e.commits = make(map[vgraph.CommitID]pos)
	}
	return nil
}

// newSegmentLocked creates a fresh segment file for a branch, encoded
// under the physical layout with cols columns (the segment's
// schema-version id).
func (e *Engine) newSegmentLocked(branch vgraph.BranchID, cols int) (*segment, error) {
	schema, err := e.hist.PhysByCount(cols)
	if err != nil {
		return nil, err
	}
	id := segID(len(e.segs))
	f, err := heap.Open(e.env.Pool, e.segPath(id), schema.RecordSize())
	if err != nil {
		return nil, err
	}
	s := &segment{id: id, branch: branch, file: f, cols: cols, schema: schema}
	e.segs = append(e.segs, s)
	return s, nil
}

// Init implements core.Engine.
func (e *Engine) Init(master *vgraph.Branch, c0 *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.newSegmentLocked(master.ID, e.hist.PhysCols())
	if err != nil {
		return err
	}
	e.byBranch[master.ID] = s.id
	e.commits[c0.ID] = pos{Seg: s.id, Slot: 0}
	return e.persistLocked()
}

// Branch implements core.Engine: "we locate the current end of the
// parent segment file (via a byte offset) and create a branch point. A
// new child segment file is created that notes the parent file and the
// offset of this branch point."
func (e *Engine) Branch(child *vgraph.Branch, from *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.commits[from.ID]
	if !ok {
		return fmt.Errorf("vf: commit %d has no recorded offset", from.ID)
	}
	s, err := e.newSegmentLocked(child.ID, e.hist.NumPhysAt(from.SchemaVer))
	if err != nil {
		return err
	}
	s.hasLink = true
	s.link = link{ParentSeg: p.Seg, ParentSlot: p.Slot, ParentCommit: from.ID}
	e.byBranch[child.ID] = s.id
	return e.persistLocked()
}

// Commit implements core.Engine: "version-first supports commits by
// mapping a commit ID to the byte offset of the latest record that is
// active in the committing branch's segment file."
func (e *Engine) Commit(c *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commitLocked(c)
}

func (e *Engine) commitLocked(c *vgraph.Commit) error {
	id, ok := e.byBranch[c.Branch]
	if !ok {
		return fmt.Errorf("vf: unknown branch %d", c.Branch)
	}
	e.commits[c.ID] = pos{Seg: id, Slot: e.segs[id].file.Count()}
	return e.persistLocked()
}

// head returns the head segment of a branch and its current cut.
func (e *Engine) headLocked(b vgraph.BranchID) (*segment, int64, error) {
	id, ok := e.byBranch[b]
	if !ok {
		return nil, 0, fmt.Errorf("vf: unknown branch %d", b)
	}
	s := e.segs[id]
	return s, s.file.Count(), nil
}

// writeHeadLocked returns the branch's head segment, first rotating it
// when a committed schema change has widened the branch's storage
// generation since the segment was created: the old head becomes an
// ordinary parent in the lineage (its pages are never rewritten) and a
// fresh segment at the new layout takes subsequent appends.
func (e *Engine) writeHeadLocked(branch vgraph.BranchID) (*segment, error) {
	s, _, err := e.headLocked(branch)
	if err != nil {
		return nil, err
	}
	need := e.hist.NumPhysAt(e.env.BranchEpoch(branch))
	if s.cols >= need {
		return s, nil
	}
	ns, err := e.newSegmentLocked(branch, need)
	if err != nil {
		return nil, err
	}
	var headCommit vgraph.CommitID
	if b, ok := e.env.Graph.Branch(branch); ok {
		headCommit = b.Head
	}
	ns.hasLink = true
	ns.link = link{ParentSeg: s.id, ParentSlot: s.file.Count(), ParentCommit: headCommit}
	e.byBranch[branch] = ns.id
	return ns, e.persistLocked()
}

// appendLocked encodes rec under the segment's physical layout
// (widening older-schema records with declared defaults) and appends
// it.
func (e *Engine) appendLocked(s *segment, rec *record.Record) error {
	if n := s.schema.RecordSize(); len(e.insBuf) < n {
		e.insBuf = make([]byte, n)
	}
	buf, err := e.hist.StorageBytes(rec, s.cols, e.insBuf[:s.schema.RecordSize()])
	if err != nil {
		return err
	}
	if _, err := s.file.Append(buf); err != nil {
		return err
	}
	e.invalidateSeg(s.id)
	return nil
}

// Insert implements core.Engine: "tuple inserts and updates are
// appended to the end of the segment file for the updated branch".
func (e *Engine) Insert(branch vgraph.BranchID, rec *record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	return e.appendLocked(s, rec)
}

// Delete implements core.Engine: "when a tuple is deleted, we insert a
// special record with a deleted header bit".
func (e *Engine) Delete(branch vgraph.BranchID, pk int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	tomb := record.New(s.schema)
	tomb.SetPK(pk)
	tomb.SetTombstone(true)
	if _, err := s.file.Append(tomb.Bytes()); err != nil {
		return err
	}
	e.invalidateSeg(s.id)
	return nil
}

// emit reads the live set's record copies segment by segment in slot
// order (the second, sequential pass of the paper's scanner) and feeds
// fn the raw stored buffer, its segment (whose cols identify the
// schema version the bytes are encoded under) and its position.
func (e *Engine) emit(live map[int64]pos, fn func(buf []byte, seg *segment, at pos) bool) error {
	bySeg := make(map[segID][]int64)
	for _, p := range live {
		bySeg[p.Seg] = append(bySeg[p.Seg], p.Slot)
	}
	ids := make([]segID, 0, len(bySeg))
	for id := range bySeg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Snapshot the segment table under the lock: a concurrent insert
	// may rotate the branch head (appending a segment) mid-emit, and
	// published segments are immutable, so the snapshot stays
	// consistent for the ids the live set references.
	e.mu.Lock()
	segs := e.segs
	e.mu.Unlock()
	for _, id := range ids {
		slots := bySeg[id]
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		s := segs[id]
		buf := make([]byte, s.schema.RecordSize())
		for _, slot := range slots {
			if err := s.file.Read(slot, buf); err != nil {
				return err
			}
			if !fn(buf, s, pos{Seg: id, Slot: slot}) {
				return nil
			}
		}
	}
	return nil
}

// ScanBranch implements core.Engine (Query 1).
func (e *Engine) ScanBranch(branch vgraph.BranchID, fn core.ScanFunc) error {
	return e.ScanBranchPushdown(branch, e.passSpec(e.env.BranchEpoch(branch)), fn)
}

// ScanCommit implements core.Engine: checkout by offset.
func (e *Engine) ScanCommit(c *vgraph.Commit, fn core.ScanFunc) error {
	return e.ScanCommitPushdown(c, e.passSpec(c.SchemaVer), fn)
}

// ScanMulti implements core.Engine (Query 4). This is the paper's
// two-pass multi-branch scanner: the first pass resolves each branch's
// live set from interval hash tables (shared ancestry resolved once via
// the interval cache), the second pass reads the union sequentially and
// emits each record copy with its branch membership.
func (e *Engine) ScanMulti(branches []vgraph.BranchID, fn core.MultiScanFunc) error {
	return e.ScanMultiPushdown(branches, e.passSpec(e.env.MaxBranchEpoch(branches)), fn)
}

// Diff implements core.Engine (Query 2). Version-first resolves both
// branches' live sets (multiple passes over the shared ancestry, the
// cost the paper attributes to this scheme) and emits the symmetric
// difference of record copies.
func (e *Engine) Diff(a, b vgraph.BranchID, fn core.DiffFunc) error {
	e.mu.Lock()
	sa, cuta, err := e.headLocked(a)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	sb, cutb, err := e.headLocked(b)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	liveA, err := e.resolveLive(pos{Seg: sa.id, Slot: cuta})
	if err != nil {
		e.mu.Unlock()
		return err
	}
	liveB, err := e.resolveLive(pos{Seg: sb.id, Slot: cutb})
	e.mu.Unlock()
	if err != nil {
		return err
	}

	onlyA := make(map[int64]pos)
	onlyB := make(map[int64]pos)
	for pk, p := range liveA {
		if q, ok := liveB[pk]; !ok || q != p {
			onlyA[pk] = p
		}
	}
	for pk, p := range liveB {
		if q, ok := liveA[pk]; !ok || q != p {
			onlyB[pk] = p
		}
	}
	// Emit under the newer of the two heads' schemas, widening rows
	// stored under older segment layouts.
	epoch := e.env.MaxBranchEpoch([]vgraph.BranchID{a, b})
	emitConv := func(live map[int64]pos, inA bool) error {
		var ferr error
		var lastSeg *segment
		var cv *record.Conv
		var scratch []byte
		err := e.emit(live, func(buf []byte, seg *segment, _ pos) bool {
			if seg != lastSeg {
				var err error
				if cv, err = e.hist.Conv(seg.cols, epoch); err != nil {
					ferr = err
					return false
				}
				if !cv.Identity() {
					scratch = cv.NewScratch()
				}
				lastSeg = seg
			}
			out := buf
			if !cv.Identity() {
				out = cv.Convert(buf, scratch)
			}
			rec, err := record.FromBytes(cv.Out(), out)
			if err != nil {
				ferr = err
				return false
			}
			return fn(rec, inA)
		})
		if err == nil {
			err = ferr
		}
		return err
	}
	if err := emitConv(onlyA, true); err != nil {
		return err
	}
	return emitConv(onlyB, false)
}

// Stats implements core.Engine.
func (e *Engine) Stats() (core.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.Stats{SegmentCount: len(e.segs)}
	for _, s := range e.segs {
		st.Records += s.file.Count()
		st.DataBytes += s.file.SizeBytes()
	}
	if fi, err := os.Stat(e.metaPath()); err == nil {
		st.CommitBytes = fi.Size()
	}
	for _, b := range e.env.Graph.Branches() {
		if id, ok := e.byBranch[b.ID]; ok {
			s := e.segs[id]
			live, err := e.resolveLive(pos{Seg: s.id, Slot: s.file.Count()})
			if err != nil {
				return st, err
			}
			st.LiveRecords += int64(len(live))
		}
	}
	return st, nil
}

// Flush implements core.Engine.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.segs {
		if err := s.file.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements core.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if err := e.persistLocked(); err != nil {
		first = err
	}
	for _, s := range e.segs {
		if err := s.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
