// Package vf implements Decibel's version-first storage scheme
// (Section 3.3): each branch stores its local modifications in its own
// segment file; a child segment records a (parent file, offset) branch
// point; a chain of such segments constitutes the full lineage of a
// branch. Commits map commit IDs to offsets in the committing branch's
// segment. Deletes append tombstone records. Merges create a new head
// segment with two parent pointers and a recorded precedence.
package vf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// segID indexes the engine's segment table.
type segID int

// pos addresses one record copy: a segment and a slot within it.
type pos struct {
	Seg  segID `json:"seg"`
	Slot int64 `json:"slot"`
}

// link is a segment's parent pointer, written once at creation. Merge
// segments carry two parents plus the recorded LCA and precedence.
type link struct {
	ParentSeg    segID           `json:"parentSeg"`
	ParentSlot   int64           `json:"parentSlot"`
	ParentCommit vgraph.CommitID `json:"parentCommit"`

	IsMerge         bool            `json:"isMerge,omitempty"`
	OtherSeg        segID           `json:"otherSeg,omitempty"`
	OtherSlot       int64           `json:"otherSlot,omitempty"`
	OtherCommit     vgraph.CommitID `json:"otherCommit,omitempty"`
	LCACommit       vgraph.CommitID `json:"lcaCommit,omitempty"`
	PrecedenceFirst bool            `json:"precedenceFirst,omitempty"`
}

// segMeta is the persisted description of one segment: the shared
// store state (schema-version id — 0 in catalogs from before schema
// versioning, meaning the table's full layout — and the zone map)
// plus version-first's lineage fields.
type segMeta struct {
	store.SegMeta
	ID        segID           `json:"id"`
	Branch    vgraph.BranchID `json:"branch"`
	HasLink   bool            `json:"hasLink"`
	Link      link            `json:"link"`
	SafeCount int64           `json:"safeCount"` // slots valid at last persist; reopen truncates past this
	Overrides []override      `json:"overrides,omitempty"`
}

// meta is the engine's persisted catalog, rewritten atomically on every
// version-control operation (commit, branch, merge), which are the
// atomicity points of Section 2.2.3.
type meta struct {
	Segments []segMeta                 `json:"segments"`
	ByBranch map[vgraph.BranchID]segID `json:"byBranch"`
	Commits  map[vgraph.CommitID]pos   `json:"commits"`
}

// segment is the in-memory segment state: the shared store segment
// plus version-first's lineage link.
type segment struct {
	*store.Segment
	id        segID
	branch    vgraph.BranchID
	hasLink   bool
	link      link
	overrides []override
}

// Engine is the version-first storage engine.
type Engine struct {
	mu   sync.Mutex
	env  *core.Env
	hist *record.History
	st   *store.Store

	segs     []*segment
	byBranch map[vgraph.BranchID]segID
	commits  map[vgraph.CommitID]pos

	// cache holds resolved per-interval key tables for frozen intervals;
	// entries for a segment are dropped when it takes new appends.
	cache map[intervalKey]intervalTable

	// Lineage/live-set cache (see cache.go). lcache holds resolved live
	// sets keyed by exact position; lineMemo memoizes rawLineage;
	// deltas is the per-segment log of per-commit RLE slot deltas with
	// deltaTail the highest slot each segment's log covers. All nil/empty
	// when the cache is disabled (Options.VFLineageCache < 0 or
	// DECIBEL_VF_CACHE=off), which forces every resolution onto the
	// full-walk baseline path.
	// pcache is the scan-plan tier above lcache: grouped, sorted,
	// scan-ready forms keyed by the exact resolved position vector.
	lcache    *liveCache
	pcache    *planCache
	lineMemo  map[pos][]step
	deltas    map[segID][]segDelta
	deltaTail map[segID]int64
}

func init() { core.RegisterEngine("version-first", Factory, "vf") }

// Factory builds a version-first engine; it satisfies core.Factory.
func Factory(env *core.Env) (core.Engine, error) {
	e := &Engine{
		env:      env,
		hist:     env.History(),
		st:       store.New(env.Pool, env.History()),
		byBranch: make(map[vgraph.BranchID]segID),
		commits:  make(map[vgraph.CommitID]pos),
		cache:    make(map[intervalKey]intervalTable),
	}
	if budget := resolveCacheBudget(env.Opt); budget > 0 {
		e.lcache = newLiveCache(budget)
		e.pcache = newPlanCache(budget)
		e.lineMemo = make(map[pos][]step)
		e.deltas = make(map[segID][]segDelta)
		e.deltaTail = make(map[segID]int64)
	}
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// Kind implements core.Engine.
func (e *Engine) Kind() string { return "version-first" }

func (e *Engine) metaPath() string { return filepath.Join(e.env.Dir, "segments.json") }
func (e *Engine) segPath(id segID) string {
	return filepath.Join(e.env.Dir, fmt.Sprintf("seg%d.dat", id))
}

// persistLocked writes the catalog atomically; caller holds e.mu.
// A segment's SafeCount is the highest slot any commit or branch/merge
// link references: appends beyond it are uncommitted and roll back on
// reopen (Section 2.2.3 — updates are "rolled back if the client
// crashes or disconnects before committing").
func (e *Engine) persistLocked() error {
	safe := e.safeCountsLocked()
	m := meta{ByBranch: e.byBranch, Commits: e.commits}
	for _, s := range e.segs {
		m.Segments = append(m.Segments, segMeta{
			SegMeta: s.Meta(),
			ID:      s.id, Branch: s.branch, HasLink: s.hasLink, Link: s.link,
			SafeCount: safe[s.id], Overrides: s.overrides,
		})
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	tmp := e.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	if e.env.Opt.Fsync {
		for _, s := range e.segs {
			if err := s.File.Sync(); err != nil {
				return err
			}
		}
	} else {
		for _, s := range e.segs {
			if err := s.File.Flush(); err != nil {
				return err
			}
		}
	}
	return os.Rename(tmp, e.metaPath())
}

// recover loads the catalog and rolls back uncommitted appends by
// truncating each segment to its last persisted count.
func (e *Engine) recover() error {
	data, err := os.ReadFile(e.metaPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("vf: %w", err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("vf: corrupt catalog: %w", err)
	}
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i].ID < m.Segments[j].ID })
	for _, sm := range m.Segments {
		// The store resolves a zero Cols (catalog from before schema
		// versioning) to the table's full layout, rolls back uncommitted
		// appends past SafeCount, and restores — or rebuilds, for
		// catalogs from before zone maps — the segment's zone map.
		seg, err := e.st.Open(e.segFilePath(sm.ID, sm.Encoding), sm.SegMeta, sm.SafeCount)
		if err != nil {
			return fmt.Errorf("vf: segment %d: %w", sm.ID, err)
		}
		e.segs = append(e.segs, &segment{
			Segment: seg, id: sm.ID, branch: sm.Branch,
			hasLink: sm.HasLink, link: sm.Link, overrides: sm.Overrides,
		})
		if e.deltaTail != nil {
			// The delta log is in-memory only: start it at the recovered
			// count so the first commit after reopen records just its own
			// window (older history resolves through the full walk).
			e.deltaTail[sm.ID] = seg.File.Count()
		}
	}
	e.byBranch = m.ByBranch
	if e.byBranch == nil {
		e.byBranch = make(map[vgraph.BranchID]segID)
	}
	e.commits = m.Commits
	if e.commits == nil {
		e.commits = make(map[vgraph.CommitID]pos)
	}
	e.sweepOrphans()
	return nil
}

// newSegmentLocked creates a fresh segment file for a branch, encoded
// under the physical layout with cols columns (the segment's
// schema-version id).
func (e *Engine) newSegmentLocked(branch vgraph.BranchID, cols int) (*segment, error) {
	id := segID(len(e.segs))
	seg, err := e.st.Create(e.segPath(id), cols)
	if err != nil {
		return nil, err
	}
	s := &segment{Segment: seg, id: id, branch: branch}
	e.segs = append(e.segs, s)
	return s, nil
}

// Init implements core.Engine.
func (e *Engine) Init(master *vgraph.Branch, c0 *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.newSegmentLocked(master.ID, e.hist.PhysCols())
	if err != nil {
		return err
	}
	e.byBranch[master.ID] = s.id
	e.commits[c0.ID] = pos{Seg: s.id, Slot: 0}
	return e.persistLocked()
}

// Branch implements core.Engine: "we locate the current end of the
// parent segment file (via a byte offset) and create a branch point. A
// new child segment file is created that notes the parent file and the
// offset of this branch point."
func (e *Engine) Branch(child *vgraph.Branch, from *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.commits[from.ID]
	if !ok {
		return fmt.Errorf("vf: commit %d has no recorded offset", from.ID)
	}
	s, err := e.newSegmentLocked(child.ID, e.hist.NumPhysAt(from.SchemaVer))
	if err != nil {
		return err
	}
	s.hasLink = true
	s.link = link{ParentSeg: p.Seg, ParentSlot: p.Slot, ParentCommit: from.ID}
	e.byBranch[child.ID] = s.id
	return e.persistLocked()
}

// Commit implements core.Engine: "version-first supports commits by
// mapping a commit ID to the byte offset of the latest record that is
// active in the committing branch's segment file."
func (e *Engine) Commit(c *vgraph.Commit) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commitLocked(c)
}

func (e *Engine) commitLocked(c *vgraph.Commit) error {
	id, ok := e.byBranch[c.Branch]
	if !ok {
		return fmt.Errorf("vf: unknown branch %d", c.Branch)
	}
	cut := e.segs[id].File.Count()
	if e.deltas != nil {
		// Record the commit's live-set delta (the RLE bitmap of newest-
		// copy slots in the committed window) so later head resolutions
		// extend a cached base instead of re-walking the lineage.
		if err := e.recordDeltaLocked(id, cut); err != nil {
			return err
		}
	}
	e.commits[c.ID] = pos{Seg: id, Slot: cut}
	return e.persistLocked()
}

// head returns the head segment of a branch and its current cut.
func (e *Engine) headLocked(b vgraph.BranchID) (*segment, int64, error) {
	id, ok := e.byBranch[b]
	if !ok {
		return nil, 0, fmt.Errorf("vf: unknown branch %d", b)
	}
	s := e.segs[id]
	return s, s.File.Count(), nil
}

// writeHeadLocked returns the branch's head segment, rotating it
// through the shared store when a committed schema change has widened
// the branch's storage generation since the segment was created: the
// old head becomes an ordinary parent in the lineage (its pages are
// never rewritten — and it is not frozen, unlike hybrid's rotated
// heads, because future appends never target it anyway once byBranch
// moves on) and a fresh segment at the new layout takes subsequent
// appends.
func (e *Engine) writeHeadLocked(branch vgraph.BranchID) (*segment, error) {
	s, _, err := e.headLocked(branch)
	if err != nil {
		return nil, err
	}
	id := segID(len(e.segs))
	ns, rotated, err := e.st.WriteTarget(s.Segment, e.hist.NumPhysAt(e.env.BranchEpoch(branch)), false, e.segPath(id))
	if err != nil {
		return nil, err
	}
	if !rotated {
		return s, nil
	}
	var headCommit vgraph.CommitID
	if b, ok := e.env.Graph.Branch(branch); ok {
		headCommit = b.Head
	}
	vs := &segment{
		Segment: ns, id: id, branch: branch,
		hasLink: true,
		link:    link{ParentSeg: s.id, ParentSlot: s.File.Count(), ParentCommit: headCommit},
	}
	e.segs = append(e.segs, vs)
	e.byBranch[branch] = vs.id
	return vs, e.persistLocked()
}

// appendLocked encodes rec under the segment's physical layout
// (widening older-schema records with declared defaults) and appends
// it through the store, which folds it into the zone map.
func (e *Engine) appendLocked(s *segment, rec *record.Record) error {
	if _, err := e.st.Append(s.Segment, rec); err != nil {
		return err
	}
	e.invalidateSeg(s.id)
	return nil
}

// Insert implements core.Engine: "tuple inserts and updates are
// appended to the end of the segment file for the updated branch".
func (e *Engine) Insert(branch vgraph.BranchID, rec *record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	return e.appendLocked(s, rec)
}

// Delete implements core.Engine: "when a tuple is deleted, we insert a
// special record with a deleted header bit".
func (e *Engine) Delete(branch vgraph.BranchID, pk int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	if _, err := s.AppendTombstone(pk); err != nil {
		return err
	}
	e.invalidateSeg(s.id)
	return nil
}

// emit reads the live set's record copies segment by segment in slot
// order (the second, sequential pass of the paper's scanner) and feeds
// fn the raw stored buffer, its segment (whose Cols identify the
// schema version the bytes are encoded under) and its position. A
// non-nil skip is consulted once per segment before any of its pages
// are read — the zone-map pruning hook.
func (e *Engine) emit(live map[int64]pos, skip func(*segment) bool, fn func(buf []byte, seg *segment, at pos) bool) error {
	bySeg := make(map[segID][]int64)
	for _, p := range live {
		bySeg[p.Seg] = append(bySeg[p.Seg], p.Slot)
	}
	ids := make([]segID, 0, len(bySeg))
	for id := range bySeg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Snapshot the segment table under the lock: a concurrent insert
	// may rotate the branch head (appending a segment) mid-emit, and
	// published segments are immutable, so the snapshot stays
	// consistent for the ids the live set references.
	e.mu.Lock()
	segs := e.segs
	e.mu.Unlock()
	for _, id := range ids {
		s := segs[id]
		if skip != nil && skip(s) {
			continue
		}
		slots := bySeg[id]
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		buf := make([]byte, s.Schema.RecordSize())
		for _, slot := range slots {
			if err := s.File.Read(slot, buf); err != nil {
				return err
			}
			if !fn(buf, s, pos{Seg: id, Slot: slot}) {
				return nil
			}
		}
	}
	return nil
}

// ScanBranch implements core.Engine (Query 1).
func (e *Engine) ScanBranch(branch vgraph.BranchID, fn core.ScanFunc) error {
	return e.ScanBranchPushdown(branch, e.passSpec(e.env.BranchEpoch(branch)), fn)
}

// ScanCommit implements core.Engine: checkout by offset.
func (e *Engine) ScanCommit(c *vgraph.Commit, fn core.ScanFunc) error {
	return e.ScanCommitPushdown(c, e.passSpec(c.SchemaVer), fn)
}

// ScanMulti implements core.Engine (Query 4). This is the paper's
// two-pass multi-branch scanner: the first pass resolves each branch's
// live set from interval hash tables (shared ancestry resolved once via
// the interval cache), the second pass reads the union sequentially and
// emits each record copy with its branch membership.
func (e *Engine) ScanMulti(branches []vgraph.BranchID, fn core.MultiScanFunc) error {
	return e.ScanMultiPushdown(branches, e.passSpec(e.env.MaxBranchEpoch(branches)), fn)
}

// Diff implements core.Engine (Query 2). Version-first resolves both
// branches' live sets (multiple passes over the shared ancestry, the
// cost the paper attributes to this scheme) and emits the symmetric
// difference of record copies. It shares the pushdown diff loop
// through a match-all spec emitting under the newer of the two heads'
// schemas.
func (e *Engine) Diff(a, b vgraph.BranchID, fn core.DiffFunc) error {
	return e.ScanDiffPushdown(a, b, e.passSpec(e.env.MaxBranchEpoch([]vgraph.BranchID{a, b})), fn)
}

// SegmentStats implements core.SegmentStatser: one summary per
// lineage segment, zone maps included.
func (e *Engine) SegmentStats() []store.SegmentStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]store.SegmentStat, 0, len(e.segs))
	for _, s := range e.segs {
		st := s.Stat(fmt.Sprintf("seg%d[branch=%d]", s.id, s.branch))
		// The lineage shape behind the segment: how many steps a scan
		// rooted at its tip walks (the cost the lineage cache
		// amortizes) and how many merge overrides it carries.
		if steps, err := e.lineageAt(pos{Seg: s.id, Slot: s.File.Count()}); err == nil {
			st.LineageDepth = len(steps)
		}
		st.Overrides = len(s.overrides)
		out = append(out, st)
	}
	return out
}

// Stats implements core.Engine.
func (e *Engine) Stats() (core.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.Stats{SegmentCount: len(e.segs)}
	for _, s := range e.segs {
		st.Records += s.File.Count()
		st.DataBytes += s.File.SizeBytes()
	}
	if fi, err := os.Stat(e.metaPath()); err == nil {
		st.CommitBytes = fi.Size()
	}
	for _, b := range e.env.Graph.Branches() {
		if id, ok := e.byBranch[b.ID]; ok {
			s := e.segs[id]
			live, err := e.resolveLive(pos{Seg: s.id, Slot: s.File.Count()})
			if err != nil {
				return st, err
			}
			st.LiveRecords += int64(len(live))
		}
	}
	return st, nil
}

// Flush implements core.Engine.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.segs {
		if err := s.File.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements core.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if err := e.persistLocked(); err != nil {
		first = err
	}
	for _, s := range e.segs {
		if err := s.File.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
