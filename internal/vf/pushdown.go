package vf

import (
	"fmt"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner). Version-
// first has no branch bitmaps — liveness comes from resolving segment
// lineages — so its pushdown is predicate + projection evaluation on
// the raw record buffer during the sequential emit pass, before the
// callback layer sees a materialized record; segments whose zone maps
// exclude the spec's bounds are dropped from the emit pass whole.
// Multi-branch scans keep the paper's two-pass shape (shared ancestry
// resolved once through the interval cache) with the spec applied in
// the second, sequential pass.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
)

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// emitSpec is emit with the spec evaluated on the raw buffer: whole
// segments are pruned against the spec's bounds via their zone maps,
// and buffers from segments older than the spec's schema epoch are
// widened (defaults filled) before the predicate sees them.
func (e *Engine) emitSpec(live map[int64]pos, spec *core.ScanSpec, fn func(rec *record.Record, at pos) bool) error {
	var ferr error
	var lastSeg *segment
	var prep func([]byte) []byte
	skip := func(s *segment) bool { return spec.SkipSegment(s.Zone(), s.Cols) }
	err := e.emit(live, skip, func(buf []byte, seg *segment, at pos) bool {
		if seg != lastSeg {
			var err error
			if prep, err = spec.Prep(seg.Cols); err != nil {
				ferr = err
				return false
			}
			lastSeg = seg
		}
		if prep != nil {
			buf = prep(buf)
		}
		out, err := spec.Apply(buf)
		if err != nil {
			ferr = err
			return false
		}
		if out == nil {
			return true
		}
		return fn(out, at)
	})
	if err == nil {
		err = ferr
	}
	return err
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	s, cut, err := e.headLocked(branch)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	live, err := e.resolveLive(pos{Seg: s.id, Slot: cut})
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.emitSpec(live, spec, func(rec *record.Record, _ pos) bool { return fn(rec) })
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	e.mu.Lock()
	p, ok := e.commits[c.ID]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("vf: commit %d has no recorded offset", c.ID)
	}
	live, err := e.resolveLive(p)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.emitSpec(live, spec, func(rec *record.Record, _ pos) bool { return fn(rec) })
}

// ScanMultiPushdown implements core.PushdownScanner.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	e.mu.Lock()
	union := make(map[pos]*bitmap.Bitmap)
	for i, b := range branches {
		s, cut, err := e.headLocked(b)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		live, err := e.resolveLive(pos{Seg: s.id, Slot: cut})
		if err != nil {
			e.mu.Unlock()
			return err
		}
		for _, p := range live {
			m := union[p]
			if m == nil {
				m = bitmap.New(len(branches))
				union[p] = m
			}
			m.Set(i)
		}
	}
	e.mu.Unlock()

	flat := make(map[int64]pos, len(union))
	i := int64(0)
	for p := range union {
		flat[i] = p
		i++
	}
	return e.emitSpec(flat, spec, func(rec *record.Record, at pos) bool {
		return fn(rec, union[at])
	})
}

// ScanDiffPushdown implements core.DiffScanner: both branches' live
// sets are resolved (the multi-pass cost the paper attributes to this
// scheme), their symmetric difference grouped by segment, and the spec
// — zone-map segment pruning included — evaluated during the
// sequential emit of each side.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	e.mu.Lock()
	sa, cuta, err := e.headLocked(a)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	sb, cutb, err := e.headLocked(b)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	liveA, err := e.resolveLive(pos{Seg: sa.id, Slot: cuta})
	if err != nil {
		e.mu.Unlock()
		return err
	}
	liveB, err := e.resolveLive(pos{Seg: sb.id, Slot: cutb})
	e.mu.Unlock()
	if err != nil {
		return err
	}

	onlyA := make(map[int64]pos)
	onlyB := make(map[int64]pos)
	for pk, p := range liveA {
		if q, ok := liveB[pk]; !ok || q != p {
			onlyA[pk] = p
		}
	}
	for pk, p := range liveB {
		if q, ok := liveA[pk]; !ok || q != p {
			onlyB[pk] = p
		}
	}
	stopped := false
	side := func(inA bool) func(rec *record.Record, _ pos) bool {
		return func(rec *record.Record, _ pos) bool {
			if !fn(rec, inA) {
				stopped = true
				return false
			}
			return true
		}
	}
	if err := e.emitSpec(onlyA, spec, side(true)); err != nil || stopped {
		return err
	}
	return e.emitSpec(onlyB, spec, side(false))
}

// InsertBatch implements core.BatchInserter: one lock acquisition and
// one head lookup for the whole batch.
func (e *Engine) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := e.appendLocked(s, rec); err != nil {
			return err
		}
	}
	return nil
}
