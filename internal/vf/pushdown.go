package vf

import (
	"fmt"
	"sort"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner,
// core.ParallelScanner). Version-first has no branch bitmaps —
// liveness comes from resolving segment lineages — so its pushdown is
// predicate + projection evaluation on the raw record buffer during
// the emit pass, before the callback layer sees a materialized record;
// segments whose zone maps exclude the spec's bounds are dropped from
// the emit pass whole. Multi-branch scans keep the paper's two-pass
// shape (shared ancestry resolved once through the interval cache)
// with the spec applied in the second pass.
//
// The emit pass is partitioned per segment (core.ScanUnit): the live
// set is resolved under the engine lock, grouped by segment in id
// order with slots ascending, and each segment's group becomes one
// unit reading its slots page-run by page-run (one pin per touched
// page instead of one locked File.Read per record). Segments that are
// no branch's head never take another append and are frozen units the
// parallel executor may fan out; branch heads stay on the caller's
// goroutine. The sequential entry points drive the same units through
// core.RunUnitsSequential.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.ParallelScanner = (*Engine)(nil)
)

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// segUnit builds the scan unit of one segment's live slots (ascending).
// Slots are read in page runs: one heap.File.Scan per contiguous group
// of listed slots on the same page, skipping the unlisted slots in
// between, so each touched page is pinned once.
func segUnit(s *segment, slots []int64, frozen bool, aux func(at pos) core.UnitAux) core.ScanUnit {
	return core.ScanUnit{
		Frozen:   frozen,
		Zone:     s.Zone(),
		PhysCols: s.Cols,
		Run: func(spec *core.ScanSpec, fn core.UnitFunc) error {
			if spec.SkipSegment(s.Zone(), s.Cols) {
				return nil
			}
			prep, err := spec.Prep(s.Cols)
			if err != nil {
				return err
			}
			per := int64(s.File.PerPage())
			var ferr error
			stop := false
			for i := 0; i < len(slots) && !stop; {
				page := slots[i] / per
				j := i + 1
				for j < len(slots) && slots[j]/per == page {
					j++
				}
				k := i
				err := s.File.Scan(slots[i], slots[j-1]+1, func(slot int64, buf []byte) bool {
					if slot != slots[k] {
						return true
					}
					k++
					if prep != nil {
						buf = prep(buf)
					}
					out, err := spec.Apply(buf)
					if err != nil {
						ferr = err
						return false
					}
					if out == nil {
						return true
					}
					if !fn(out, aux(pos{Seg: s.id, Slot: slot})) {
						stop = true
						return false
					}
					return true
				})
				if err == nil {
					err = ferr
				}
				if err != nil {
					return err
				}
				i = j
			}
			return nil
		},
	}
}

func noAux(pos) core.UnitAux { return core.UnitAux{} }

// headsLocked returns the set of segments currently serving as a
// branch head — the only segments still taking appends. Caller holds
// e.mu.
func (e *Engine) headsLocked() map[segID]bool {
	heads := make(map[segID]bool, len(e.byBranch))
	for _, id := range e.byBranch {
		heads[id] = true
	}
	return heads
}

// unitsFor groups resolved positions by segment — ids ascending, slots
// ascending, mirroring the sequential emit order — and builds one unit
// per segment. segs and heads were snapshotted under e.mu.
func unitsFor(bySeg map[segID][]int64, segs []*segment, heads map[segID]bool, aux func(at pos) core.UnitAux) []core.ScanUnit {
	ids := make([]segID, 0, len(bySeg))
	for id := range bySeg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	units := make([]core.ScanUnit, 0, len(ids))
	for _, id := range ids {
		slots := bySeg[id]
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		units = append(units, segUnit(segs[id], slots, !heads[id], aux))
	}
	return units
}

// groupLive buckets a resolved live set by segment.
func groupLive(live map[int64]pos) map[segID][]int64 {
	bySeg := make(map[segID][]int64)
	for _, p := range live {
		bySeg[p.Seg] = append(bySeg[p.Seg], p.Slot)
	}
	return bySeg
}

// pinAll pins (under the engine lock, which the caller holds) every
// segment a partition's units reference and returns the release func
// handing the pins back; a concurrent compaction retires replaced
// files only after the pins drain.
func pinAll(segs []*segment, groups ...map[segID][]int64) func() {
	var pinned []*store.Segment
	seen := make(map[segID]bool)
	for _, g := range groups {
		for id := range g {
			if seen[id] {
				continue
			}
			seen[id] = true
			segs[id].Segment.Pin()
			pinned = append(pinned, segs[id].Segment)
		}
	}
	return func() {
		for _, sg := range pinned {
			sg.Unpin()
		}
	}
}

// PartitionScan implements core.ParallelScanner: live sets are
// resolved under the engine lock exactly as the sequential scans
// resolve them, then partitioned into per-segment units. Every segment
// a unit references is pinned until release is called.
func (e *Engine) PartitionScan(req core.ScanRequest) ([]core.ScanUnit, func(), error) {
	switch req.Kind {
	case core.ScanKindBranch:
		e.mu.Lock()
		s, cut, err := e.headLocked(req.Branch)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		live, err := e.resolveLive(pos{Seg: s.id, Slot: cut})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		bySeg := groupLive(live)
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, bySeg)
		e.mu.Unlock()
		return unitsFor(bySeg, segs, heads, noAux), release, nil

	case core.ScanKindCommit:
		e.mu.Lock()
		p, ok := e.commits[req.Commit.ID]
		if !ok {
			e.mu.Unlock()
			return nil, nil, fmt.Errorf("vf: commit %d has no recorded offset", req.Commit.ID)
		}
		live, err := e.resolveLive(p)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		bySeg := groupLive(live)
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, bySeg)
		e.mu.Unlock()
		return unitsFor(bySeg, segs, heads, noAux), release, nil

	case core.ScanKindMulti:
		e.mu.Lock()
		union := make(map[pos]*bitmap.Bitmap)
		for i, b := range req.Branches {
			s, cut, err := e.headLocked(b)
			if err != nil {
				e.mu.Unlock()
				return nil, nil, err
			}
			live, err := e.resolveLive(pos{Seg: s.id, Slot: cut})
			if err != nil {
				e.mu.Unlock()
				return nil, nil, err
			}
			for _, p := range live {
				m := union[p]
				if m == nil {
					m = bitmap.New(len(req.Branches))
					union[p] = m
				}
				m.Set(i)
			}
		}
		bySeg := make(map[segID][]int64)
		for p := range union {
			bySeg[p.Seg] = append(bySeg[p.Seg], p.Slot)
		}
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, bySeg)
		e.mu.Unlock()
		// union is read-only from here on: per-pos bitmaps are safe to
		// hand out across units.
		return unitsFor(bySeg, segs, heads, func(at pos) core.UnitAux {
			return core.UnitAux{Member: union[at]}
		}), release, nil

	case core.ScanKindDiff:
		e.mu.Lock()
		sa, cuta, err := e.headLocked(req.A)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		sb, cutb, err := e.headLocked(req.B)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		liveA, err := e.resolveLive(pos{Seg: sa.id, Slot: cuta})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		liveB, err := e.resolveLive(pos{Seg: sb.id, Slot: cutb})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		onlyA := make(map[int64]pos)
		onlyB := make(map[int64]pos)
		for pk, p := range liveA {
			if q, ok := liveB[pk]; !ok || q != p {
				onlyA[pk] = p
			}
		}
		for pk, p := range liveB {
			if q, ok := liveA[pk]; !ok || q != p {
				onlyB[pk] = p
			}
		}
		byA, byB := groupLive(onlyA), groupLive(onlyB)
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, byA, byB)
		e.mu.Unlock()
		inA := func(pos) core.UnitAux { return core.UnitAux{InA: true} }
		inB := func(pos) core.UnitAux { return core.UnitAux{InA: false} }
		units := unitsFor(byA, segs, heads, inA)
		return append(units, unitsFor(byB, segs, heads, inB)...), release, nil
	}
	return nil, func() {}, nil
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindBranch, Branch: branch})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindCommit, Commit: c})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanMultiPushdown implements core.PushdownScanner.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindMulti, Branches: branches})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.Member) })
}

// ScanDiffPushdown implements core.DiffScanner: both branches' live
// sets are resolved (the multi-pass cost the paper attributes to this
// scheme), their symmetric difference grouped by segment, and the spec
// — zone-map segment pruning included — evaluated during the emit of
// each side.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindDiff, A: a, B: b})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.InA) })
}

// InsertBatch implements core.BatchInserter: one lock acquisition and
// one head lookup for the whole batch.
func (e *Engine) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := e.appendLocked(s, rec); err != nil {
			return err
		}
	}
	return nil
}
