package vf

import (
	"fmt"
	"sort"

	"decibel/internal/bitmap"
	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

// Pushdown scans (core.PushdownScanner, core.DiffScanner,
// core.ParallelScanner). Version-first has no branch bitmaps —
// liveness comes from resolving segment lineages — so its pushdown is
// predicate + projection evaluation on the raw record buffer during
// the emit pass, before the callback layer sees a materialized record;
// segments whose zone maps exclude the spec's bounds are dropped from
// the emit pass whole. Multi-branch scans keep the paper's two-pass
// shape (shared ancestry resolved once through the interval cache)
// with the spec applied in the second pass.
//
// The emit pass is partitioned per segment (core.ScanUnit): the live
// set is resolved under the engine lock, grouped by segment in id
// order with slots ascending, and each segment's group becomes one
// unit reading its slots page-run by page-run (one pin per touched
// page instead of one locked File.Read per record). Segments that are
// no branch's head never take another append and are frozen units the
// parallel executor may fan out; branch heads stay on the caller's
// goroutine. The sequential entry points drive the same units through
// core.RunUnitsSequential.

var (
	_ core.PushdownScanner = (*Engine)(nil)
	_ core.DiffScanner     = (*Engine)(nil)
	_ core.BatchInserter   = (*Engine)(nil)
	_ core.ParallelScanner = (*Engine)(nil)
)

// passSpec is the match-all, project-nothing spec the plain Scan*
// entry points delegate through, so the engine has exactly one copy of
// each scan loop. epoch selects the schema version records are emitted
// under.
func (e *Engine) passSpec(epoch int) *core.ScanSpec {
	sp, err := core.NewScanSpecAt(e.hist, epoch, nil, nil)
	if err != nil {
		panic(err) // no projection: cannot fail
	}
	return sp
}

// segUnit builds the scan unit of one segment's live slots (ascending).
// Slots are read in page runs: one heap.File.Scan per contiguous group
// of listed slots on the same page, skipping the unlisted slots in
// between, so each touched page is pinned once.
func segUnit(s *segment, slots []int64, frozen bool, aux func(at pos) core.UnitAux) core.ScanUnit {
	return core.ScanUnit{
		Frozen:   frozen,
		Zone:     s.Zone(),
		PhysCols: s.Cols,
		Run: func(spec *core.ScanSpec, fn core.UnitFunc) error {
			if spec.SkipSegment(s.Zone(), s.Cols) {
				return nil
			}
			prep, err := spec.Prep(s.Cols)
			if err != nil {
				return err
			}
			per := int64(s.File.PerPage())
			var ferr error
			stop := false
			for i := 0; i < len(slots) && !stop; {
				page := slots[i] / per
				j := i + 1
				for j < len(slots) && slots[j]/per == page {
					j++
				}
				k := i
				err := s.File.Scan(slots[i], slots[j-1]+1, func(slot int64, buf []byte) bool {
					if slot != slots[k] {
						return true
					}
					k++
					if prep != nil {
						buf = prep(buf)
					}
					out, err := spec.Apply(buf)
					if err != nil {
						ferr = err
						return false
					}
					if out == nil {
						return true
					}
					if !fn(out, aux(pos{Seg: s.id, Slot: slot})) {
						stop = true
						return false
					}
					return true
				})
				if err == nil {
					err = ferr
				}
				if err != nil {
					return err
				}
				i = j
			}
			return nil
		},
	}
}

func noAux(pos) core.UnitAux { return core.UnitAux{} }

// headsLocked returns the set of segments currently serving as a
// branch head — the only segments still taking appends. Caller holds
// e.mu.
func (e *Engine) headsLocked() map[segID]bool {
	heads := make(map[segID]bool, len(e.byBranch))
	for _, id := range e.byBranch {
		heads[id] = true
	}
	return heads
}

// sortedGroups turns a per-segment slot bucketing into the canonical
// scan-plan form: one group per segment, ids ascending, slots
// ascending, mirroring the sequential emit order. This is the shape
// the plan cache retains, so the grouping and sorting cost is paid
// once per distinct position vector instead of once per scan.
func sortedGroups(bySeg map[segID][]int64) []planGroup {
	groups := make([]planGroup, 0, len(bySeg))
	for id, slots := range bySeg {
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		groups = append(groups, planGroup{id: id, slots: slots})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	return groups
}

// unitsFor builds one scan unit per plan group. segs and heads were
// snapshotted under e.mu; head status is never cached with the plan —
// it is re-read per scan so a segment that froze since the plan was
// built becomes eligible for parallel fan-out (and never the reverse).
func unitsFor(groups []planGroup, segs []*segment, heads map[segID]bool, aux func(at pos) core.UnitAux) []core.ScanUnit {
	units := make([]core.ScanUnit, 0, len(groups))
	for _, g := range groups {
		units = append(units, segUnit(segs[g.id], g.slots, !heads[g.id], aux))
	}
	return units
}

// groupLive buckets a resolved live set by segment.
func groupLive(live map[int64]pos) map[segID][]int64 {
	bySeg := make(map[segID][]int64)
	for _, p := range live {
		bySeg[p.Seg] = append(bySeg[p.Seg], p.Slot)
	}
	return bySeg
}

// pinAll pins (under the engine lock, which the caller holds) every
// segment a partition's units reference and returns the release func
// handing the pins back; a concurrent compaction retires replaced
// files only after the pins drain.
func pinAll(segs []*segment, groupLists ...[]planGroup) func() {
	var pinned []*store.Segment
	seen := make(map[segID]bool)
	for _, gs := range groupLists {
		for _, g := range gs {
			if seen[g.id] {
				continue
			}
			seen[g.id] = true
			segs[g.id].Segment.Pin()
			pinned = append(pinned, segs[g.id].Segment)
		}
	}
	return func() {
		for _, sg := range pinned {
			sg.Unpin()
		}
	}
}

// planFor looks up the scan-plan cache (counting a hit as a lineage
// cache hit: the plan embeds the resolutions) and falls back to build,
// caching the result. build runs under e.mu, like the caller.
func (e *Engine) planFor(key string, build func() (*planEntry, error)) (*planEntry, error) {
	if e.pcache != nil {
		if en := e.pcache.get(key); en != nil {
			vfCacheHits.Add(1)
			return en, nil
		}
	}
	en, err := build()
	if err != nil {
		return nil, err
	}
	en.key = key
	if e.pcache != nil {
		e.pcache.put(en)
	}
	return en, nil
}

// singlePlanLocked returns the scan plan of one resolved position
// (branch-head and commit scans share it: same position, same plan).
// Caller holds e.mu.
func (e *Engine) singlePlanLocked(p pos) (*planEntry, error) {
	return e.planFor(planKey('s', p), func() (*planEntry, error) {
		live, err := e.resolveLive(p)
		if err != nil {
			return nil, err
		}
		return &planEntry{groups: sortedGroups(groupLive(live))}, nil
	})
}

// PartitionScan implements core.ParallelScanner: live sets are
// resolved under the engine lock exactly as the sequential scans
// resolve them, then partitioned into per-segment units. Every segment
// a unit references is pinned until release is called.
func (e *Engine) PartitionScan(req core.ScanRequest) ([]core.ScanUnit, func(), error) {
	switch req.Kind {
	case core.ScanKindBranch:
		e.mu.Lock()
		s, cut, err := e.headLocked(req.Branch)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		en, err := e.singlePlanLocked(pos{Seg: s.id, Slot: cut})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, en.groups)
		e.mu.Unlock()
		return unitsFor(en.groups, segs, heads, noAux), release, nil

	case core.ScanKindCommit:
		e.mu.Lock()
		p, ok := e.commits[req.Commit.ID]
		if !ok {
			e.mu.Unlock()
			return nil, nil, fmt.Errorf("vf: commit %d has no recorded offset", req.Commit.ID)
		}
		en, err := e.singlePlanLocked(p)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, en.groups)
		e.mu.Unlock()
		return unitsFor(en.groups, segs, heads, noAux), release, nil

	case core.ScanKindMulti:
		e.mu.Lock()
		positions := make([]pos, len(req.Branches))
		for i, b := range req.Branches {
			s, cut, err := e.headLocked(b)
			if err != nil {
				e.mu.Unlock()
				return nil, nil, err
			}
			positions[i] = pos{Seg: s.id, Slot: cut}
		}
		en, err := e.planFor(planKey('m', positions...), func() (*planEntry, error) {
			union := make(map[pos]*bitmap.Bitmap)
			for i, p := range positions {
				live, err := e.resolveLive(p)
				if err != nil {
					return nil, err
				}
				for _, q := range live {
					m := union[q]
					if m == nil {
						m = bitmap.New(len(positions))
						union[q] = m
					}
					m.Set(i)
				}
			}
			bySeg := make(map[segID][]int64)
			for q := range union {
				bySeg[q.Seg] = append(bySeg[q.Seg], q.Slot)
			}
			return &planEntry{groups: sortedGroups(bySeg), member: union}, nil
		})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, en.groups)
		e.mu.Unlock()
		// en.member is read-only from here on: per-pos bitmaps are safe
		// to hand out across units.
		member := en.member
		return unitsFor(en.groups, segs, heads, func(at pos) core.UnitAux {
			return core.UnitAux{Member: member[at]}
		}), release, nil

	case core.ScanKindDiff:
		e.mu.Lock()
		sa, cuta, err := e.headLocked(req.A)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		sb, cutb, err := e.headLocked(req.B)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		pa, pb := pos{Seg: sa.id, Slot: cuta}, pos{Seg: sb.id, Slot: cutb}
		en, err := e.planFor(planKey('d', pa, pb), func() (*planEntry, error) {
			// The exclusive sides come from the lineage delta: only keys
			// claimed by the non-shared steps of either branch are
			// compared, so a diff's cost scales with what actually changed
			// since the fork instead of the full live-set size.
			onlyA, onlyB, err := e.diffLiveLocked(pa, pb)
			if err != nil {
				return nil, err
			}
			return &planEntry{
				groups:  sortedGroups(groupLive(onlyA)),
				groupsB: sortedGroups(groupLive(onlyB)),
			}, nil
		})
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		segs, heads := e.segs, e.headsLocked()
		release := pinAll(segs, en.groups, en.groupsB)
		e.mu.Unlock()
		inA := func(pos) core.UnitAux { return core.UnitAux{InA: true} }
		inB := func(pos) core.UnitAux { return core.UnitAux{InA: false} }
		units := unitsFor(en.groups, segs, heads, inA)
		return append(units, unitsFor(en.groupsB, segs, heads, inB)...), release, nil
	}
	return nil, func() {}, nil
}

// ScanBranchPushdown implements core.PushdownScanner.
func (e *Engine) ScanBranchPushdown(branch vgraph.BranchID, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindBranch, Branch: branch})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanCommitPushdown implements core.PushdownScanner.
func (e *Engine) ScanCommitPushdown(c *vgraph.Commit, spec *core.ScanSpec, fn core.ScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindCommit, Commit: c})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, _ core.UnitAux) bool { return fn(rec) })
}

// ScanMultiPushdown implements core.PushdownScanner.
func (e *Engine) ScanMultiPushdown(branches []vgraph.BranchID, spec *core.ScanSpec, fn core.MultiScanFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindMulti, Branches: branches})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.Member) })
}

// ScanDiffPushdown implements core.DiffScanner: both branches' live
// sets are resolved (the multi-pass cost the paper attributes to this
// scheme), their symmetric difference grouped by segment, and the spec
// — zone-map segment pruning included — evaluated during the emit of
// each side.
func (e *Engine) ScanDiffPushdown(a, b vgraph.BranchID, spec *core.ScanSpec, fn core.DiffFunc) error {
	units, release, err := e.PartitionScan(core.ScanRequest{Kind: core.ScanKindDiff, A: a, B: b})
	if err != nil {
		return err
	}
	defer release()
	return core.RunUnitsSequential(units, spec, func(rec *record.Record, aux core.UnitAux) bool { return fn(rec, aux.InA) })
}

// InsertBatch implements core.BatchInserter: one lock acquisition and
// one head lookup for the whole batch.
func (e *Engine) InsertBatch(branch vgraph.BranchID, recs []*record.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, err := e.writeHeadLocked(branch)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := e.appendLocked(s, rec); err != nil {
			return err
		}
	}
	return nil
}
