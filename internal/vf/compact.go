package vf

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"decibel/internal/compact"
	"decibel/internal/core"
	"decibel/internal/store"
	"decibel/internal/vgraph"
)

var (
	_ core.Compactor       = (*Engine)(nil)
	_ core.PKLookupScanner = (*Engine)(nil)
)

// segFilePath returns the data file of a segment under the given
// encoding: seg<id>.dat for heap files (the legacy name, so existing
// datasets open unchanged), seg<id>.dcz for compressed ones. The
// encoding travels in the catalog (store.SegMeta.Encoding), so recover
// derives the path the same way.
func (e *Engine) segFilePath(id segID, enc string) string {
	if enc == store.EncDCZ {
		return filepath.Join(e.env.Dir, fmt.Sprintf("seg%d.dcz", id))
	}
	return e.segPath(id)
}

// safeCountsLocked computes each segment's safe count — the highest
// slot any commit, branch/merge link or override references. Appends
// beyond it are uncommitted and roll back on reopen; compaction may
// only touch segments whose whole file is safe. Caller holds e.mu.
func (e *Engine) safeCountsLocked() map[segID]int64 {
	safe := make(map[segID]int64, len(e.segs))
	for _, p := range e.commits {
		if p.Slot > safe[p.Seg] {
			safe[p.Seg] = p.Slot
		}
	}
	for _, s := range e.segs {
		if !s.hasLink {
			continue
		}
		if s.link.ParentSlot > safe[s.link.ParentSeg] {
			safe[s.link.ParentSeg] = s.link.ParentSlot
		}
		if s.link.IsMerge && s.link.OtherSlot > safe[s.link.OtherSeg] {
			safe[s.link.OtherSeg] = s.link.OtherSlot
		}
		for _, ov := range s.overrides {
			if !ov.Deleted && ov.Slot+1 > safe[ov.Seg] {
				safe[ov.Seg] = ov.Slot + 1
			}
		}
	}
	return safe
}

// CompactSegments implements core.Compactor for the version-first
// scheme. Segment files ARE the version history here — a parent
// segment's byte ranges are addressed by child branch points and
// commit offsets — so slots can never be renumbered and physical
// merging is off the table; the pass is compression-only. A segment
// qualifies when it is no branch's head (it will never take another
// append), every row in it is committed (count == safe count) and it
// is not already compressed.
//
// Crash safety: the replacement .dcz files are written and fsynced
// first (a crash here leaves orphans the next open sweeps), then the
// catalog is rewritten with the new encoding tags — the tmp+rename in
// persistLocked is the commit point — and only then are the old .dat
// files unlinked, each deferred until its last pinned reader drains.
func (e *Engine) CompactSegments(opt compact.Options) (compact.Stats, error) {
	opt = opt.Defaults()
	var st compact.Stats
	if opt.Mode == compact.ModeOff || !opt.Compress {
		return st, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	heads := e.headsLocked()
	safe := e.safeCountsLocked()
	type repl struct {
		old     *segment
		ns      *store.Segment
		pages   int
		oldDisk int64
	}
	var repls []repl
	abort := func() {
		for _, r := range repls {
			r.ns.File.Close()
			os.Remove(r.ns.File.Path())
		}
	}
	for _, s := range e.segs {
		n := s.File.Count()
		if heads[s.id] || s.Encoding == store.EncDCZ || n == 0 || n != safe[s.id] {
			continue
		}
		ns, pages, err := e.st.CompressSegment(s.Segment, e.segFilePath(s.id, store.EncDCZ), n)
		if err != nil {
			abort()
			return st, err
		}
		repls = append(repls, repl{old: s, ns: ns, pages: pages, oldDisk: s.File.DiskBytes()})
	}
	if len(repls) == 0 {
		return st, nil
	}
	if opt.FailPoint == compact.FailAfterTemp {
		// Simulate a crash after the new files hit disk but before the
		// catalog swap: the .dcz files stay behind as orphans.
		for _, r := range repls {
			r.ns.File.Close()
		}
		return st, compact.FailPointErr(opt.FailPoint)
	}

	// Swap copy-on-write: in-flight scans snapshotted the old slice
	// header (and pinned the segments they read), so the table itself
	// must not be mutated in place.
	segs := append([]*segment(nil), e.segs...)
	for _, r := range repls {
		old := r.old
		segs[old.id] = &segment{
			Segment: r.ns, id: old.id, branch: old.branch,
			hasLink: old.hasLink, link: old.link, overrides: old.overrides,
		}
	}
	prev := e.segs
	e.segs = segs
	if err := e.persistLocked(); err != nil {
		e.segs = prev
		abort()
		return st, err
	}
	// Compression preserves slot numbering, so cached resolutions
	// pointing into replaced segments would stay readable; drop the
	// entries rooted at them anyway so the cache's validity never
	// depends on the re-encoder's internals. Interval tables keyed on
	// the replaced segments are dropped for the same reason.
	for _, r := range repls {
		e.invalidateResolvedLocked(r.old.id)
		e.invalidateSeg(r.old.id)
	}
	for _, r := range repls {
		st.SegmentsCompressed++
		st.PagesCompressed += int64(r.pages)
		st.BytesReclaimed += r.oldDisk - r.ns.File.DiskBytes()
	}
	if opt.FailPoint == compact.FailBeforeUnlink {
		// Simulate a crash after the catalog swap but before the old
		// files are unlinked; the next open sweeps them.
		return st, compact.FailPointErr(opt.FailPoint)
	}
	for _, r := range repls {
		r.old.Segment.RetireAndRemove(e.segFilePath(r.old.id, r.old.Encoding))
	}
	return st, nil
}

// sweepOrphans removes segment data files the catalog does not
// reference — the debris of a compaction (or crash) that wrote
// replacement files without committing, or committed without
// unlinking — plus stale catalog temp files. Called at the end of
// recover, when the referenced set is known.
func (e *Engine) sweepOrphans() {
	keep := make(map[string]bool, len(e.segs))
	for _, s := range e.segs {
		keep[filepath.Base(s.File.Path())] = true
	}
	ents, err := os.ReadDir(e.env.Dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || keep[name] {
			continue
		}
		dataFile := strings.HasPrefix(name, "seg") &&
			(strings.HasSuffix(name, ".dat") || strings.HasSuffix(name, ".dcz"))
		if dataFile || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(e.env.Dir, name))
		}
	}
}

// LookupPKPushdown implements core.PKLookupScanner: a branch-head read
// of one primary key. Version-first has no per-branch key index — the
// paper's scheme resolves liveness from the segment lineage — so the
// lookup resolves the branch's live set (cached per frozen interval)
// and reads the single record copy the key maps to; the spec's full
// predicate and projection run on it, so the result is identical to
// the scan it replaces.
func (e *Engine) LookupPKPushdown(branch vgraph.BranchID, pk int64, spec *core.ScanSpec, fn core.ScanFunc) (bool, error) {
	e.mu.Lock()
	s, cut, err := e.headLocked(branch)
	if err != nil {
		e.mu.Unlock()
		return false, nil // unknown branch: let the scan path report it
	}
	live, err := e.resolveLive(pos{Seg: s.id, Slot: cut})
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	p, ok := live[pk]
	if !ok {
		e.mu.Unlock()
		return true, nil // served: the key is not live in this branch
	}
	seg := e.segs[p.Seg]
	buf := make([]byte, seg.Schema.RecordSize())
	if err := seg.File.Read(p.Slot, buf); err != nil {
		e.mu.Unlock()
		return false, err
	}
	prep, err := spec.Prep(seg.Cols)
	if err != nil {
		e.mu.Unlock()
		return false, err
	}
	if prep != nil {
		buf = prep(buf)
	}
	rec, err := spec.Apply(buf)
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	if rec != nil {
		fn(rec)
	}
	return true, nil
}
