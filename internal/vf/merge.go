package vf

import (
	"fmt"

	"decibel/internal/core"
	"decibel/internal/record"
	"decibel/internal/vgraph"
)

// Merge implements core.Engine for the version-first scheme (Section
// 3.3): "merging involves creating a new branch, a new child segment,
// and branch points within each parent", with the recorded parent
// priority ordering future scans.
//
// Scan-order precedence alone cannot express every outcome: a key whose
// churn on one side nets out to "unchanged since the LCA" can still
// leave copies or tombstones in that side's post-LCA intervals that
// would wrongly outrank the other side's genuine change, and resolved
// three-way records can equal the non-precedence side. The merge
// therefore resolves the live sets of both heads and the LCA into
// primary-key hash tables (the paper's multi-pass approach), computes
// the desired per-key outcome, and records an override — pointing at an
// existing record copy, preserving copy identity, or a deletion — for
// exactly the keys where a pure scan would disagree. Resolved records
// that match neither side are materialized into the new head segment,
// "which must be scanned before either of its parents".
func (e *Engine) Merge(into, other vgraph.BranchID, mc *vgraph.Commit, kind core.MergeKind) (core.MergeStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.MergeStats

	sA, cutA, err := e.headLocked(into)
	if err != nil {
		return st, err
	}
	sB, cutB, err := e.headLocked(other)
	if err != nil {
		return st, err
	}
	lcaID := e.env.Graph.LCA(mc.Parents[0], mc.Parents[1])
	lcaPos, ok := e.commits[lcaID]
	if !ok {
		return st, fmt.Errorf("vf: merge LCA commit %d has no recorded offset", lcaID)
	}

	// First pass(es): materialize the live sets of both heads and the
	// LCA into primary-key hash tables (Section 3.3 merge).
	liveA, err := e.resolveLive(pos{Seg: sA.id, Slot: cutA})
	if err != nil {
		return st, err
	}
	liveB, err := e.resolveLive(pos{Seg: sB.id, Slot: cutB})
	if err != nil {
		return st, err
	}
	liveL, err := e.resolveLive(lcaPos)
	if err != nil {
		return st, err
	}

	// Create the merged head segment with its two branch points, at the
	// physical layout of the merge commit's schema epoch (the newer of
	// the two parents: rows inherited from the older side decode with
	// defaults filled).
	d, err := e.newSegmentLocked(into, e.hist.NumPhysAt(mc.SchemaVer))
	if err != nil {
		return st, err
	}
	d.hasLink = true
	d.link = link{
		ParentSeg: sA.id, ParentSlot: cutA, ParentCommit: mc.Parents[0],
		IsMerge:  true,
		OtherSeg: sB.id, OtherSlot: cutB, OtherCommit: mc.Parents[1],
		LCACommit: lcaID, PrecedenceFirst: mc.PrecedenceFirst,
	}
	e.byBranch[into] = d.id
	sA.Freeze() // the old head becomes an internal, immutable file

	// What a pure scan of the new lineage would yield, before any
	// overrides or materialized records.
	scanOut, err := e.resolveLive(pos{Seg: d.id, Slot: 0})
	if err != nil {
		return st, err
	}

	changed := func(live map[int64]pos, pk int64) bool {
		p, okNow := live[pk]
		q, okLCA := liveL[pk]
		return okNow != okLCA || (okNow && p != q)
	}
	union := make(map[int64]struct{})
	for pk := range liveA {
		union[pk] = struct{}{}
	}
	for pk := range liveB {
		union[pk] = struct{}{}
	}
	for pk := range liveL {
		union[pk] = struct{}{}
	}
	// Keys dead in both heads and the LCA can still surface from the
	// composed lineage when chained merges re-rank an old live copy
	// above the tombstone that killed it; include every key the pure
	// scan yields so such resurrections get a deletion override.
	for pk := range scanOut {
		union[pk] = struct{}{}
	}

	// Records from the two sides (and the LCA) may be stored under
	// different schema versions; resolve all of them under the merge
	// commit's visible schema before comparing or three-way merging.
	recSize := int64(e.hist.VisibleAt(mc.SchemaVer).RecordSize())
	readAt := func(p pos) (*record.Record, error) {
		s := e.segs[p.Seg]
		buf := make([]byte, s.Schema.RecordSize())
		if err := s.File.Read(p.Slot, buf); err != nil {
			return nil, err
		}
		cv, err := e.hist.Conv(s.Cols, mc.SchemaVer)
		if err != nil {
			return nil, err
		}
		st.TuplesScanned++
		return cv.Materialize(buf), nil
	}
	// ensure applies the desired outcome for pk: nothing if the pure
	// scan already agrees, an override otherwise.
	ensure := func(pk int64, want pos, deleted bool) {
		got, live := scanOut[pk]
		if deleted {
			if live {
				d.overrides = append(d.overrides, override{PK: pk, Deleted: true})
			}
			return
		}
		if !live || got != want {
			d.overrides = append(d.overrides, override{PK: pk, Seg: want.Seg, Slot: want.Slot})
		}
	}

	for pk := range union {
		ca, cb := changed(liveA, pk), changed(liveB, pk)
		if ca {
			st.ChangedA++
			st.DiffBytes += recSize
		}
		if cb {
			st.ChangedB++
			st.DiffBytes += recSize
		}
		var want pos
		var deleted bool
		switch {
		case !ca && !cb, ca && !cb:
			want, deleted = liveA[pk], false
			if _, ok := liveA[pk]; !ok {
				deleted = true
			}
		case cb && !ca:
			want, deleted = liveB[pk], false
			if _, ok := liveB[pk]; !ok {
				deleted = true
			}
		default:
			posA, okA := liveA[pk]
			posB, okB := liveB[pk]
			var recA, recB *record.Record
			if okA {
				if recA, err = readAt(posA); err != nil {
					return st, err
				}
			}
			if okB {
				if recB, err = readAt(posB); err != nil {
					return st, err
				}
			}
			if kind == core.TwoWay {
				same := (recA == nil && recB == nil) || (recA != nil && recB != nil && recA.Equal(recB))
				if !same {
					st.Conflicts++
				}
				if mc.PrecedenceFirst {
					want, deleted = posA, !okA
				} else {
					want, deleted = posB, !okB
				}
				ensure(pk, want, deleted)
				continue
			}
			var base *record.Record
			if p, ok := liveL[pk]; ok {
				if base, err = readAt(p); err != nil {
					return st, err
				}
			}
			res := record.Merge3(base, recA, recB, mc.PrecedenceFirst)
			if res.Conflict {
				st.Conflicts++
			}
			switch {
			case res.Deleted:
				ensure(pk, pos{}, true)
			case recA != nil && res.Record.Equal(recA):
				ensure(pk, posA, false)
			case recB != nil && res.Record.Equal(recB):
				ensure(pk, posB, false)
			default:
				// Materialize the resolved record into the merged head
				// segment; its own interval outranks everything below.
				if err := e.appendLocked(d, res.Record); err != nil {
					return st, err
				}
				st.Materialized++
				// Appended records rank above overrides, so no override is
				// needed — but the key may also be claimed by an override
				// added for a different reason; appending is sufficient.
			}
			continue
		}
		ensure(pk, want, deleted)
	}
	// The pure-scan resolution of the new head (scanOut) was computed —
	// and possibly cached — before the override table above was filled;
	// drop every resolution rooted at the merged segment so later reads
	// re-resolve with the overrides in place.
	e.invalidateResolvedLocked(d.id)
	return st, e.commitLocked(mc)
}
