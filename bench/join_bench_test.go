package bench_test

// Join and group-by benchmarks for the relational-algebra planner:
//
//   - BenchmarkJoin2Way: big ⋈ mid under greedy ordering vs the worst
//     declared order (big first, so the hash side is the large
//     relation). Greedy picks the small side at plan time from
//     zone-map row estimates.
//   - BenchmarkJoin3Way: big ⋈ mid ⋈ small with a selective predicate
//     on the smallest relation. The declared order is deliberately
//     worst (largest first); the setup asserts both orders emit
//     byte-identical tuple streams before timing, so the speedup is
//     never bought with different results.
//   - BenchmarkGroupBy: the streaming bounded-hash Groups terminal vs
//     gathering rows and folding after the fact — the baseline the
//     grouped path replaces.
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates them against a merge-base baseline built in-job.

import (
	"fmt"
	"testing"

	"decibel"
)

const (
	joinBigRows   = 10000
	joinMidRows   = 1000
	joinSmallRows = 50
)

// loadJoinBench builds three joinable tables in one version: big
// (joinBigRows; g = pk%64 for grouping), mid, small — big.mid_id keys
// into mid, mid.small_id into small.
func loadJoinBench(tb testing.TB, engine string) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), decibel.WithEngine(engine),
		decibel.WithPageSize(256<<10), decibel.WithPoolPages(128))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	big := decibel.NewSchema().Int64("id").Int64("mid_id").Int64("g").Int64("v").MustBuild()
	mid := decibel.NewSchema().Int64("id").Int64("small_id").Int64("v").MustBuild()
	small := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	for _, tbl := range []struct {
		name string
		s    *decibel.Schema
	}{{"big", big}, {"mid", mid}, {"small", small}} {
		if _, err := db.CreateTable(tbl.name, tbl.s); err != nil {
			tb.Fatal(err)
		}
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, joinBigRows)
		for i := range recs {
			rec := decibel.NewRecord(big)
			rec.SetPK(int64(i))
			rec.Set(1, int64(i%joinMidRows))
			rec.Set(2, int64(i%64))
			rec.Set(3, int64(i))
			recs[i] = rec
		}
		if err := tx.InsertBatch("big", recs); err != nil {
			return err
		}
		recs = make([]*decibel.Record, joinMidRows)
		for i := range recs {
			rec := decibel.NewRecord(mid)
			rec.SetPK(int64(i))
			rec.Set(1, int64(i%joinSmallRows))
			rec.Set(2, int64(i))
			recs[i] = rec
		}
		if err := tx.InsertBatch("mid", recs); err != nil {
			return err
		}
		recs = make([]*decibel.Record, joinSmallRows)
		for i := range recs {
			rec := decibel.NewRecord(small)
			rec.SetPK(int64(i))
			rec.Set(1, int64(i))
			recs[i] = rec
		}
		return tx.InsertBatch("small", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	// Freeze the heads at a branch point so hybrid scans frozen,
	// zone-mapped segments — what the greedy orderer estimates from.
	if _, err := db.Branch(decibel.Master, "jf"); err != nil {
		tb.Fatal(err)
	}
	return db
}

// join3 composes the worst declared order — biggest first — so greedy
// reordering has the most to win.
func join3(db *decibel.DB) *decibel.Query {
	return db.Query("big").On(decibel.Master).
		JoinOn(db.Query("mid"), decibel.On("mid_id", "id")).
		JoinOn(db.Query("small").Where(decibel.Col("v").Lt(5)), decibel.On("small_id", "id"))
}

// drainTuples runs the join and returns the formatted stream.
func drainTuples(tb testing.TB, q *decibel.Query) []string {
	tb.Helper()
	tuples, errFn := q.Tuples()
	var out []string
	for tup := range tuples {
		line := ""
		for i, rec := range tup {
			if i > 0 {
				line += " | "
			}
			line += rec.String()
		}
		out = append(out, line)
	}
	if err := errFn(); err != nil {
		tb.Fatal(err)
	}
	return out
}

func BenchmarkJoin2Way(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadJoinBench(b, engine)
		mk := func(declared bool) *decibel.Query {
			q := db.Query("big").On(decibel.Master).
				JoinOn(db.Query("mid"), decibel.On("mid_id", "id"))
			if declared {
				q = q.DeclaredJoinOrder()
			}
			return q
		}
		for _, mode := range []string{"greedy", "declared-worst"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				declared := mode == "declared-worst"
				want := len(drainTuples(b, mk(declared))) // warm
				if want != joinBigRows {
					b.Fatalf("join emitted %d tuples, want %d", want, joinBigRows)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := mk(declared).Count()
					if err != nil {
						b.Fatal(err)
					}
					if n != want {
						b.Fatalf("count = %d, want %d", n, want)
					}
				}
			})
		}
	}
}

func BenchmarkJoin3Way(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadJoinBench(b, engine)
		greedy := drainTuples(b, join3(db))
		declared := drainTuples(b, join3(db).DeclaredJoinOrder())
		if len(greedy) != len(declared) {
			b.Fatalf("greedy emitted %d tuples, declared %d", len(greedy), len(declared))
		}
		for i := range greedy {
			if greedy[i] != declared[i] {
				b.Fatalf("tuple %d differs between orders:\n  greedy   %s\n  declared %s", i, greedy[i], declared[i])
			}
		}
		for _, mode := range []string{"greedy", "declared-worst"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				want := len(greedy)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := join3(db)
					if mode == "declared-worst" {
						q = q.DeclaredJoinOrder()
					}
					n, err := q.Count()
					if err != nil {
						b.Fatal(err)
					}
					if n != want {
						b.Fatalf("count = %d, want %d", n, want)
					}
				}
			})
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadJoinBench(b, engine)
		b.Run(engine+"/streaming", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				groups, errFn := db.Query("big").On(decibel.Master).
					GroupBy("g").Groups(decibel.Count(), decibel.Sum("v"))
				n := 0
				for range groups {
					n++
				}
				if err := errFn(); err != nil {
					b.Fatal(err)
				}
				if n != 64 {
					b.Fatalf("streamed %d groups, want 64", n)
				}
			}
		})
		b.Run(engine+"/gather-and-fold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, errFn := db.Query("big").On(decibel.Master).Rows()
				type acc struct {
					n   int
					sum int64
				}
				m := make(map[int64]*acc)
				for rec := range rows {
					g := rec.Get(2)
					a := m[g]
					if a == nil {
						a = &acc{}
						m[g] = a
					}
					a.n++
					a.sum += rec.Get(3)
				}
				if err := errFn(); err != nil {
					b.Fatal(err)
				}
				if len(m) != 64 {
					b.Fatalf("folded %d groups, want 64", len(m))
				}
			}
		})
	}
}
