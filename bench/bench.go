// Package bench is the public face of the paper's benchmark harness
// (Section 5): deterministic dataset generators for the deep, flat,
// science and curation branching strategies, resolved over any
// registered storage engine by name. The root bench_test.go harness
// and the decibel-bench CLI drive their experiments through this
// package.
package bench

import (
	_ "decibel" // link the storage engines into the registry

	ibench "decibel/internal/bench"
	"decibel/internal/core"
)

// Branching strategies (Section 5.1).
type Strategy = ibench.Strategy

const (
	Deep     = ibench.Deep     // one long chain of branches
	Flat     = ibench.Flat     // many children off one mainline commit
	Science  = ibench.Science  // analysts fork snapshots and retire
	Curation = ibench.Curation // dev/feature branches merge back
)

// Config sets a generated dataset's shape: strategy, branch count,
// operations per branch, record size, update mix, commit cadence.
type Config = ibench.Config

// Dataset is a loaded benchmark dataset plus the handles the
// experiments address (mainline, children, active/retired branches,
// commits, merge samples).
type Dataset = ibench.Dataset

// MergeSample records the stats and latency of one merge performed
// during loading.
type MergeSample = ibench.MergeSample

// Options tunes the storage engine under test; the zero value gives
// defaults.
type Options = core.Options

// DefaultConfig returns the paper-shaped defaults for a strategy.
func DefaultConfig(s Strategy) Config { return ibench.DefaultConfig(s) }

// Load builds a dataset at dir with the named engine ("tuple-first",
// "version-first", "hybrid" or an alias) and returns it ready for
// measurement. Unknown engine names return an error wrapping
// decibel.ErrUnknownEngine.
func Load(dir, engine string, opt Options, cfg Config) (*Dataset, error) {
	factory, err := core.LookupEngine(engine)
	if err != nil {
		return nil, err
	}
	return ibench.Load(dir, factory, opt, cfg)
}
