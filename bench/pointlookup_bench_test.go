package bench_test

// Point-lookup benchmark: Where(Col("id").Eq(k)) on a branch head
// resolved through the primary-key index (lookup) vs the retained
// baseline path (Plan.NoPrune extracts no bounds, so the same query
// runs as a full segment scan). The dataset is the segment-skip
// fixture — 8 waves of live records spread across segments — so the
// scan baseline pays realistic multi-segment cost. version-first has
// no head pk index and serves both modes by scanning; its rows exist
// for cross-engine comparison.
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates them against a merge-base baseline built in-job.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	"decibel/internal/core"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

func BenchmarkPointLookup(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		db := loadSegmentBench(b, engine)
		// A pk from the middle wave: the scan baseline cannot stop at
		// the first segment.
		pk := int64(skipWaves/2*skipWaveRows + 7)
		for _, mode := range []string{"lookup", "scan"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				plan := iquery.Plan{
					Table:    "s",
					Branches: []string{decibel.Master},
					AtSeq:    -1,
					Where:    iquery.Col("id").Eq(pk),
					NoPrune:  mode == "scan",
				}
				before := core.CountPointLookups()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := plan.Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := c.Scan(ctx, func(*record.Record) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					if rows != 1 {
						b.Fatalf("rows = %d, want 1", rows)
					}
				}
				b.StopTimer()
				served := core.CountPointLookups() - before
				b.ReportMetric(float64(served)/float64(b.N), "lookups/op")
				if mode == "scan" && served != 0 {
					b.Fatalf("baseline mode used the pk index %d times", served)
				}
				if mode == "lookup" && engine != "vf" && served != int64(b.N) {
					b.Fatalf("lookup mode served %d of %d via the pk index", served, b.N)
				}
			})
		}
	}
}
