package bench_test

// Multi-branch query benchmarks (paper Table 1 shapes) over the
// facade's query builder, measuring the engine-level pushdown paths
// against the pre-builder execution strategies:
//
//   - BenchmarkMultiBranchScan compares the single-pass bitmap-union
//     HEAD() scan (mode=pushdown) against one independent rescan per
//     branch merged by primary key (mode=rescan), on every engine.
//   - BenchmarkQueryShapes runs the four query shapes — single-version
//     scan, positive diff, version join, HEAD scan — through the
//     builder at a fixed predicate selectivity.
//
// Run with -benchtime=1x in CI as a smoke test so the pushdown paths
// are exercised on every change.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

const (
	benchBranches = 6
	benchRecords  = 4000 // per-branch live records on master before branching
)

// loadQueryBench builds a flat branching shape through the facade: a
// master with benchRecords rows (batch-inserted), then benchBranches-1
// child branches each updating a distinct 10% slice and adding 5% new
// rows, so heads overlap heavily but differ — the HEAD() scan shape of
// the paper's evaluation.
func loadQueryBench(tb testing.TB, engine string) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), decibel.WithEngine(engine),
		decibel.WithPageSize(256<<10), decibel.WithPoolPages(128))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").Int32("pad").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	mk := func(pk, v int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, v)
		rec.Set(2, v%97)
		return rec
	}
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, benchRecords)
		for i := range recs {
			recs[i] = mk(int64(i), int64(i))
		}
		return tx.InsertBatch("r", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	for bi := 1; bi < benchBranches; bi++ {
		name := fmt.Sprintf("b%d", bi)
		if _, err := db.Branch(decibel.Master, name); err != nil {
			tb.Fatal(err)
		}
		lo := benchRecords / 10 * (bi - 1)
		if _, err := db.Commit(name, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, benchRecords/10+benchRecords/20)
			for pk := lo; pk < lo+benchRecords/10; pk++ {
				recs = append(recs, mk(int64(pk), int64(pk+1000000*bi)))
			}
			for pk := benchRecords + benchRecords/20*(bi-1); pk < benchRecords+benchRecords/20*bi; pk++ {
				recs = append(recs, mk(int64(pk), int64(pk)))
			}
			return tx.InsertBatch("r", recs)
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// headsPlan is the benchmark's HEAD() scan with a non-selective
// predicate, the shape of the paper's Query 4.
func headsPlan() iquery.Plan {
	return iquery.Plan{
		Table:    "r",
		AllHeads: true,
		AtSeq:    -1,
		Where:    iquery.Col("v").Ge(0),
	}
}

// BenchmarkMultiBranchScan measures the multi-branch HEAD() scan both
// ways the executor can run it: as one engine pass over the union of
// the branch bitmaps (pushdown) and as one independent rescan per
// branch merged by primary key (rescan) — the strategy every
// multi-branch query paid before the builder existed.
func BenchmarkMultiBranchScan(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		db := loadQueryBench(b, engine)
		for _, mode := range []string{"pushdown", "rescan"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c, err := headsPlan().Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					scan := c.ScanMulti
					if mode == "rescan" {
						scan = c.ScanMultiRescan
					}
					if err := scan(ctx, func(*record.Record, *decibel.Bitmap) bool {
						rows++
						return true
					}); err != nil {
						b.Fatal(err)
					}
					if rows == 0 {
						b.Fatal("empty scan")
					}
				}
			})
		}
	}
}

// BenchmarkQueryShapes drives the four paper query shapes through the
// public builder on the hybrid engine (the paper's headline scheme).
func BenchmarkQueryShapes(b *testing.B) {
	db := loadQueryBench(b, "hy")
	pred := decibel.Col("v").Ge(0)

	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := db.Query("r").On("b1").Where(pred).Count()
			if err != nil || n == 0 {
				b.Fatalf("count = %d (%v)", n, err)
			}
		}
	})
	b.Run("diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, qErr := db.Query("r").Diff("b1", decibel.Master)
			n := 0
			for range rows {
				n++
			}
			if err := qErr(); err != nil || n == 0 {
				b.Fatalf("diff rows = %d (%v)", n, err)
			}
		}
	})
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pairs, qErr := db.Query("r").Where(pred).Join("b1", "b2")
			n := 0
			for range pairs {
				n++
			}
			if err := qErr(); err != nil || n == 0 {
				b.Fatalf("join rows = %d (%v)", n, err)
			}
		}
	})
	b.Run("heads", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			annotated, qErr := db.Query("r").Heads().Where(pred).Annotated()
			n := 0
			for range annotated {
				n++
			}
			if err := qErr(); err != nil || n == 0 {
				b.Fatalf("head rows = %d (%v)", n, err)
			}
		}
	})
}
