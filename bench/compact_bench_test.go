package bench_test

// Compaction benchmarks: the cost of a pass and what it buys readers.
//
//   - BenchmarkCompactionPass measures one full compaction pass over
//     the segment-bench dataset (8 frozen segments per engine): run
//     merging + tombstone GC + page re-encoding, with the dataset
//     rebuilt outside the timer each iteration since a pass is
//     idempotent. merged/op, pages/op and reclaimed-B/op come from the
//     pass stats, so the report shows the pass doing real work.
//   - BenchmarkCompactedScan runs the same selective scan before and
//     after a pass, so the raw/compacted pair shows what decoding
//     compressed pages (and, on hybrid, scanning merged segments)
//     costs or saves on the read path.
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates them against a merge-base baseline built in-job.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	"decibel/internal/record"
)

func compactBenchOpts() []decibel.Option {
	return []decibel.Option{
		decibel.WithCompaction("manual"),
		decibel.WithCompactionThresholds(2, 1<<20),
	}
}

// loadCompactBench is the segment-bench dataset plus a schema widening
// and one trailing commit: the tuple-first engine seals an extent only
// when the schema widens, so without the bump every row would still
// sit in the mutable tail extent and a pass would find nothing there.
// The trailing row's value stays out of every wave's range so the
// selective scan counts are unchanged.
func loadCompactBench(tb testing.TB, engine string) *decibel.DB {
	tb.Helper()
	db := loadSegmentBench(tb, engine, compactBenchOpts()...)
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		return tx.AddColumn("s", decibel.Column{Name: "w", Type: decibel.Int64}, decibel.Default(0))
	}); err != nil {
		tb.Fatal(err)
	}
	tbl, err := db.TableByName("s")
	if err != nil {
		tb.Fatal(err)
	}
	wide := tbl.Schema()
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(wide)
		rec.SetPK(int64(skipWaves * skipWaveRows))
		rec.Set(1, int64(-1))
		return tx.InsertBatch("s", []*decibel.Record{rec})
	}); err != nil {
		tb.Fatal(err)
	}
	return db
}

func BenchmarkCompactionPass(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			var merged, pages, reclaimed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := loadCompactBench(b, engine)
				b.StartTimer()
				st, err := db.Compact()
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if st.SegmentsMerged == 0 && st.SegmentsCompressed == 0 {
					b.Fatalf("pass did nothing: %+v", st)
				}
				merged += st.SegmentsMerged
				pages += st.PagesCompressed
				reclaimed += st.BytesReclaimed
				db.Close()
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(merged)/float64(b.N), "merged/op")
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(float64(reclaimed)/float64(b.N), "reclaimed-B/op")
		})
	}
}

func BenchmarkCompactedScan(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		db := loadCompactBench(b, engine)
		for _, mode := range []string{"raw", "compacted"} {
			if mode == "compacted" {
				if st, err := db.Compact(); err != nil {
					b.Fatal(err)
				} else if st.SegmentsMerged == 0 && st.SegmentsCompressed == 0 {
					b.Fatalf("pass did nothing: %+v", st)
				}
			}
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				// Warm pass so the first mode measured does not pay the
				// cold page reads.
				warm, err := selectivePlan(false).Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if err := warm.Scan(ctx, func(*record.Record) bool { return true }); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := selectivePlan(false).Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := c.Scan(ctx, func(*record.Record) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					if rows != skipWaveRows {
						b.Fatalf("rows = %d, want %d", rows, skipWaveRows)
					}
				}
			})
		}
	}
}
