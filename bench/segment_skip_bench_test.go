package bench_test

// Zone-map benchmarks: segment skipping for selective Where scans and
// predicate pushdown for Diff, each against its retained baseline.
//
//   - BenchmarkSegmentSkipWhere runs a selective range predicate over a
//     table whose live set spans many segments with disjoint value
//     ranges, pruned (zone maps on) vs noprune (the retained baseline
//     path, Plan.NoPrune). The segs/op and skips/op metrics come from
//     the shared segment-scan counters, so the report shows the pruned
//     mode reading fewer segments, not just running faster.
//   - BenchmarkDiffPushdown diffs two branches whose differences span
//     every segment, with a predicate selecting one segment's range:
//     pushdown (predicate + pruning inside the engine diff loop) vs
//     postfilter (the pre-pushdown strategy: materialize every
//     differing record, filter above the engine).
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates them against a merge-base baseline built in-job.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
	"decibel/internal/store"
)

const (
	skipWaves    = 8    // segments with disjoint value ranges
	skipWaveRows = 1500 // rows per wave
	skipStride   = 100000
)

// loadSegmentBench builds a master branch whose live records span
// skipWaves segments with disjoint value ranges: each wave after the
// first is loaded on its own branch and merged back, which rotates the
// head segment in both segment-per-branch engines (hybrid freezes the
// old head at the branch point; version-first's merge links a new head
// over both parents), so master's live set stays spread across the
// wave segments.
func loadSegmentBench(tb testing.TB, engine string, opts ...decibel.Option) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), append([]decibel.Option{decibel.WithEngine(engine),
		decibel.WithPageSize(256 << 10), decibel.WithPoolPages(128)}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("s", schema); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	for wave := 0; wave < skipWaves; wave++ {
		branch := decibel.Master
		if wave > 0 {
			branch = fmt.Sprintf("w%d", wave)
			if _, err := db.Branch(decibel.Master, branch); err != nil {
				tb.Fatal(err)
			}
		}
		lo := int64(wave) * skipStride
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, skipWaveRows)
			for i := range recs {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(wave*skipWaveRows + i))
				rec.Set(1, lo+int64(i))
				recs[i] = rec
			}
			return tx.InsertBatch("s", recs)
		}); err != nil {
			tb.Fatal(err)
		}
		if wave > 0 {
			if _, _, err := db.Merge(decibel.Master, branch); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return db
}

// selectivePlan matches exactly one wave's value range.
func selectivePlan(noPrune bool) iquery.Plan {
	lo := int64(skipWaves/2) * skipStride
	return iquery.Plan{
		Table:    "s",
		Branches: []string{decibel.Master},
		AtSeq:    -1,
		Where:    iquery.Col("v").Ge(lo).And(iquery.Col("v").Lt(lo + skipStride)),
		NoPrune:  noPrune,
	}
}

func BenchmarkSegmentSkipWhere(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		db := loadSegmentBench(b, engine)
		for _, mode := range []string{"pruned", "noprune"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				// Warm the buffer pool with one unpruned pass so the first
				// mode measured does not pay the cold reads.
				warm, err := selectivePlan(true).Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if err := warm.Scan(ctx, func(*record.Record) bool { return true }); err != nil {
					b.Fatal(err)
				}
				scanned0, skipped0 := store.SegmentScanCounters()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := selectivePlan(mode == "noprune").Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := c.Scan(ctx, func(*record.Record) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					if rows != skipWaveRows {
						b.Fatalf("rows = %d, want %d", rows, skipWaveRows)
					}
				}
				scanned1, skipped1 := store.SegmentScanCounters()
				b.ReportMetric(float64(scanned1-scanned0)/float64(b.N), "segs/op")
				b.ReportMetric(float64(skipped1-skipped0)/float64(b.N), "skips/op")
			})
		}
	}
}

// loadDiffBench adds a dev branch to the segment-bench dataset whose
// updates touch a slice of every wave, so the diff spans all segments.
func loadDiffBench(tb testing.TB, engine string, opts ...decibel.Option) *decibel.DB {
	tb.Helper()
	db := loadSegmentBench(tb, engine, opts...)
	if _, err := db.Branch(decibel.Master, "dev"); err != nil {
		tb.Fatal(err)
	}
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, 0, skipWaves*skipWaveRows/10)
		for wave := 0; wave < skipWaves; wave++ {
			lo := int64(wave) * skipStride
			for i := 0; i < skipWaveRows/10; i++ {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(wave*skipWaveRows + i))
				rec.Set(1, lo+int64(i)+7) // changed copy, same range
				recs = append(recs, rec)
			}
		}
		return tx.InsertBatch("s", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	return db
}

func BenchmarkDiffPushdown(b *testing.B) {
	for _, engine := range []string{"tf", "vf", "hy"} {
		db := loadDiffBench(b, engine)
		for _, mode := range []string{"pushdown", "postfilter"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				lo := int64(skipWaves/2) * skipStride
				plan := iquery.Plan{
					Table:    "s",
					Branches: []string{"dev", decibel.Master},
					AtSeq:    -1,
					Where:    iquery.Col("v").Ge(lo).And(iquery.Col("v").Lt(lo + skipStride)),
				}
				// Warm the buffer pool so mode ordering cannot skew the
				// comparison with cold reads.
				warm, err := plan.Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if err := warm.DiffPostFilter(ctx, func(*record.Record) bool { return true }); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := plan.Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					count := func(*record.Record) bool { rows++; return true }
					if mode == "pushdown" {
						err = c.Diff(ctx, count)
					} else {
						err = c.DiffPostFilter(ctx, count)
					}
					if err != nil {
						b.Fatal(err)
					}
					if rows != skipWaveRows/10 {
						b.Fatalf("diff rows = %d, want %d", rows, skipWaveRows/10)
					}
				}
			})
		}
	}
}
