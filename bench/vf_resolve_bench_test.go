package bench_test

// Version-first resolution benchmarks: the lineage shapes that make
// the vf scheme's read cost interesting, each run cold (the lineage
// cache disabled via WithLineageCache(-1), so every scan pays the full
// lineage walk — the pre-cache baseline) and warm (the default cache,
// so repeated scans hit cached resolutions and scan plans).
//
//   - BenchmarkVFResolve/chain: a 64-commit-deep single-branch history
//     (each commit updates a slice of the table), scanned at the head.
//     Deep histories are where per-commit interval tables pile up.
//   - BenchmarkVFResolve/fanout: 16 branches forked off one master,
//     each with its own updates, scanned with a multi-branch HEAD()
//     query — k near-identical live sets resolved per request.
//   - BenchmarkVFResolve/mergediff: the post-merge diff shape — a
//     master assembled by repeated merges, a dev branch updating a
//     slice of every wave, positive diff between the two heads.
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates the warm modes like every other query benchmark.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

const (
	resolveChainCommits = 64   // history depth of the chain shape
	resolveChainRows    = 2048 // live rows in the chain table
	resolveFanBranches  = 16   // forks in the fan-out shape
	resolveFanRows      = 2048 // master rows before forking
)

// resolveModeOpts maps a mode label to the options that produce it.
func resolveModeOpts(mode string) []decibel.Option {
	if mode == "cold" {
		return []decibel.Option{decibel.WithLineageCache(-1)}
	}
	return nil
}

// loadResolveChain builds a master whose head sits on top of
// resolveChainCommits committed windows: a base load, then commits
// each rewriting a rotating 1/8 slice of the table.
func loadResolveChain(tb testing.TB, opts ...decibel.Option) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), append([]decibel.Option{decibel.WithEngine("vf"),
		decibel.WithPageSize(256 << 10), decibel.WithPoolPages(128)}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	mk := func(pk, v int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, v)
		return rec
	}
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, resolveChainRows)
		for i := range recs {
			recs[i] = mk(int64(i), int64(i))
		}
		return tx.InsertBatch("r", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	slice := resolveChainRows / 8
	for c := 0; c < resolveChainCommits; c++ {
		lo := (c % 8) * slice
		if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, slice)
			for pk := lo; pk < lo+slice; pk++ {
				recs = append(recs, mk(int64(pk), int64(pk+1000*(c+1))))
			}
			return tx.InsertBatch("r", recs)
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// loadResolveFan forks resolveFanBranches branches off one master,
// each committing updates to its own 1/32 slice plus a few new rows.
func loadResolveFan(tb testing.TB, opts ...decibel.Option) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), append([]decibel.Option{decibel.WithEngine("vf"),
		decibel.WithPageSize(256 << 10), decibel.WithPoolPages(128)}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	mk := func(pk, v int64) *decibel.Record {
		rec := decibel.NewRecord(schema)
		rec.SetPK(pk)
		rec.Set(1, v)
		return rec
	}
	if _, err := db.Commit(decibel.Master, func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, resolveFanRows)
		for i := range recs {
			recs[i] = mk(int64(i), int64(i))
		}
		return tx.InsertBatch("r", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	slice := resolveFanRows / 32
	for bi := 0; bi < resolveFanBranches; bi++ {
		name := fmt.Sprintf("f%d", bi)
		if _, err := db.Branch(decibel.Master, name); err != nil {
			tb.Fatal(err)
		}
		lo := bi * slice
		if _, err := db.Commit(name, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, slice+4)
			for pk := lo; pk < lo+slice; pk++ {
				recs = append(recs, mk(int64(pk), int64(pk+1000000*(bi+1))))
			}
			for j := 0; j < 4; j++ {
				pk := resolveFanRows + bi*4 + j
				recs = append(recs, mk(int64(pk), int64(pk)))
			}
			return tx.InsertBatch("r", recs)
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// BenchmarkVFResolve measures the three lineage shapes cold and warm.
func BenchmarkVFResolve(b *testing.B) {
	ctx := context.Background()
	run := func(b *testing.B, db *decibel.DB, plan iquery.Plan, wantRows int, diff bool) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := plan.Compile(db.Database)
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			count := func(*record.Record) bool { rows++; return true }
			if diff {
				err = c.Diff(ctx, count)
			} else if plan.AllHeads {
				err = c.ScanMulti(ctx, func(*record.Record, *decibel.Bitmap) bool { rows++; return true })
			} else {
				err = c.Scan(ctx, count)
			}
			if err != nil {
				b.Fatal(err)
			}
			if rows != wantRows {
				b.Fatalf("rows = %d, want %d", rows, wantRows)
			}
		}
	}

	for _, mode := range []string{"cold", "warm"} {
		opts := resolveModeOpts(mode)
		b.Run("chain/"+mode, func(b *testing.B) {
			db := loadResolveChain(b, opts...)
			plan := iquery.Plan{Table: "r", Branches: []string{decibel.Master}, AtSeq: -1,
				Where: iquery.Col("v").Ge(0)}
			run(b, db, plan, resolveChainRows, false)
		})
		b.Run("fanout/"+mode, func(b *testing.B) {
			db := loadResolveFan(b, opts...)
			plan := iquery.Plan{Table: "r", AllHeads: true, AtSeq: -1,
				Where: iquery.Col("v").Ge(0)}
			// Union of record copies: master's originals stay live in
			// master, plus each fork's rewritten slice and new rows.
			want := resolveFanRows + resolveFanBranches*(resolveFanRows/32+4)
			run(b, db, plan, want, false)
		})
		b.Run("mergediff/"+mode, func(b *testing.B) {
			db := loadDiffBench(b, "vf", opts...)
			lo := int64(skipWaves/2) * skipStride
			plan := iquery.Plan{Table: "s", Branches: []string{"dev", decibel.Master}, AtSeq: -1,
				Where: iquery.Col("v").Ge(lo).And(iquery.Col("v").Lt(lo + skipStride))}
			run(b, db, plan, skipWaveRows/10, true)
		})
	}
}
