package bench_test

// Parallel-scan benchmarks: a multi-segment dataset scanned with the
// parallel executor vs the sequential path (Plan.NoParallel, the
// retained baseline). The predicate is broad — every wave matches — so
// the work fans out one goroutine per frozen segment; the pscans/op
// metric shows whether the parallel path actually engaged (it declines
// to 0 when the resolved pool size is 1, e.g. GOMAXPROCS=1 with no
// DECIBEL_SCAN_WORKERS override).
//
// The loader differs from loadSegmentBench because parallel fan-out
// requires *frozen* wave segments, and the two segment-per-branch
// engines freeze on different events: hybrid freezes a segment when a
// branch is created off the branch it heads, version-first when a
// merge rotates its owner's head away from it. Each wave therefore
// gets a back-merge (rotates the wave branch's head, vf) followed by a
// throwaway branch (freezes the head at the branch point, hy).
// Tuple-first keeps one extent and never fans out — its compensating
// optimization is per-page zone maps, benchmarked elsewhere.
//
//   - BenchmarkParallelScanCount: Count aggregate, the shape with no
//     emit serialization — per-worker partials merged at the end.
//   - BenchmarkParallelScanRows: full row emission through the
//     buffered unit merge, the worst case for parallel overhead.
//   - BenchmarkParallelDiff: dev-vs-master diff spanning every wave.
//
// Run with -benchtime=1x in CI as a smoke test; the bench-regression
// job gates them against a merge-base baseline built in-job.

import (
	"context"
	"fmt"
	"testing"

	"decibel"
	"decibel/internal/core"
	iquery "decibel/internal/query"
	"decibel/internal/record"
)

// loadParallelBench builds a master branch whose live records span
// skipWaves segments that are all frozen, so a master scan fans out on
// the parallel executor in both segment-per-branch engines.
func loadParallelBench(tb testing.TB, engine string) *decibel.DB {
	tb.Helper()
	db, err := decibel.Open(tb.TempDir(), decibel.WithEngine(engine),
		decibel.WithPageSize(256<<10), decibel.WithPoolPages(128))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("s", schema); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Init("bench"); err != nil {
		tb.Fatal(err)
	}
	for wave := 0; wave < skipWaves; wave++ {
		branch := decibel.Master
		if wave > 0 {
			branch = fmt.Sprintf("pw%d", wave)
			if _, err := db.Branch(decibel.Master, branch); err != nil {
				tb.Fatal(err)
			}
		}
		lo := int64(wave) * skipStride
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, skipWaveRows)
			for i := range recs {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(wave*skipWaveRows + i))
				rec.Set(1, lo+int64(i))
				recs[i] = rec
			}
			return tx.InsertBatch("s", recs)
		}); err != nil {
			tb.Fatal(err)
		}
		if wave > 0 {
			if _, _, err := db.Merge(decibel.Master, branch); err != nil {
				tb.Fatal(err)
			}
			// Rotate the wave branch's head so version-first stops
			// treating the wave's segment as a mutable head.
			if _, _, err := db.Merge(branch, decibel.Master); err != nil {
				tb.Fatal(err)
			}
		}
		// Freeze the segment at a branch point for hybrid.
		if _, err := db.Branch(branch, fmt.Sprintf("pf%d", wave)); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// loadParallelDiffBench adds a dev branch whose updates touch a slice
// of every wave, so the master-side records of the diff span all the
// frozen wave segments.
func loadParallelDiffBench(tb testing.TB, engine string) *decibel.DB {
	tb.Helper()
	db := loadParallelBench(tb, engine)
	if _, err := db.Branch(decibel.Master, "pdev"); err != nil {
		tb.Fatal(err)
	}
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.Commit("pdev", func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, 0, skipWaves*skipWaveRows/10)
		for wave := 0; wave < skipWaves; wave++ {
			lo := int64(wave) * skipStride
			for i := 0; i < skipWaveRows/10; i++ {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(wave*skipWaveRows + i))
				rec.Set(1, lo+int64(i)+7) // changed copy, same range
				recs = append(recs, rec)
			}
		}
		return tx.InsertBatch("s", recs)
	}); err != nil {
		tb.Fatal(err)
	}
	return db
}

// broadPlan matches every wave, so every frozen segment carries work.
func broadPlan(noParallel bool) iquery.Plan {
	return iquery.Plan{
		Table:      "s",
		Branches:   []string{decibel.Master},
		AtSeq:      -1,
		Where:      iquery.Col("v").Ge(0),
		NoParallel: noParallel,
	}
}

func BenchmarkParallelScanCount(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadParallelBench(b, engine)
		for _, mode := range []string{"parallel", "sequential"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				plan := broadPlan(mode == "sequential")
				warm, err := plan.Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := warm.Aggregate(ctx, iquery.AggCount, ""); err != nil {
					b.Fatal(err)
				}
				pscans0, _ := core.ParallelScanCounters()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := plan.Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					n, err := c.Aggregate(ctx, iquery.AggCount, "")
					if err != nil {
						b.Fatal(err)
					}
					if int(n) != skipWaves*skipWaveRows {
						b.Fatalf("count = %d, want %d", int(n), skipWaves*skipWaveRows)
					}
				}
				pscans1, _ := core.ParallelScanCounters()
				b.ReportMetric(float64(pscans1-pscans0)/float64(b.N), "pscans/op")
			})
		}
	}
}

func BenchmarkParallelScanRows(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadParallelBench(b, engine)
		for _, mode := range []string{"parallel", "sequential"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				plan := broadPlan(mode == "sequential")
				warm, err := plan.Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if err := warm.Scan(ctx, func(*record.Record) bool { return true }); err != nil {
					b.Fatal(err)
				}
				pscans0, _ := core.ParallelScanCounters()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := plan.Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := c.Scan(ctx, func(*record.Record) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					if rows != skipWaves*skipWaveRows {
						b.Fatalf("rows = %d, want %d", rows, skipWaves*skipWaveRows)
					}
				}
				pscans1, _ := core.ParallelScanCounters()
				b.ReportMetric(float64(pscans1-pscans0)/float64(b.N), "pscans/op")
			})
		}
	}
}

func BenchmarkParallelDiff(b *testing.B) {
	for _, engine := range []string{"vf", "hy"} {
		db := loadParallelDiffBench(b, engine)
		for _, mode := range []string{"parallel", "sequential"} {
			b.Run(fmt.Sprintf("%s/%s", engine, mode), func(b *testing.B) {
				ctx := context.Background()
				plan := iquery.Plan{
					Table:      "s",
					Branches:   []string{"pdev", decibel.Master},
					AtSeq:      -1,
					NoParallel: mode == "sequential",
				}
				warm, err := plan.Compile(db.Database)
				if err != nil {
					b.Fatal(err)
				}
				if err := warm.Diff(ctx, func(*record.Record) bool { return true }); err != nil {
					b.Fatal(err)
				}
				pscans0, _ := core.ParallelScanCounters()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := plan.Compile(db.Database)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := c.Diff(ctx, func(*record.Record) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					if rows != skipWaves*skipWaveRows/10 {
						b.Fatalf("diff rows = %d, want %d", rows, skipWaves*skipWaveRows/10)
					}
				}
				pscans1, _ := core.ParallelScanCounters()
				b.ReportMetric(float64(pscans1-pscans0)/float64(b.N), "pscans/op")
			})
		}
	}
}
