package bench_test

// Serving benchmark: the load generator behind cmd/decibel-loadgen
// driven against an in-process server, reporting sustained throughput
// and tail latency for a mixed read/commit workload. Each b.N
// iteration is one timed loadgen run, so -benchtime=1x (CI) measures a
// single sustained burst; the reported metrics are rates, not ns/op.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"decibel"
	"decibel/loadgen"
)

func BenchmarkServeLoadgen(b *testing.B) {
	for _, clients := range []int{8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			db, err := decibel.Open(b.TempDir(), decibel.WithEngine("hy"))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				b.Fatal(err)
			}
			if _, _, err := db.Init("bench"); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(decibel.NewServer(db).Handler())
			defer ts.Close()

			var reads, commits, errors int64
			var elapsed time.Duration
			var readP99 time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := loadgen.Run(context.Background(), loadgen.Config{
					URL:      ts.URL,
					Table:    "r",
					Branch:   decibel.Master,
					Clients:  clients,
					Duration: 500 * time.Millisecond,
					Keys:     4096,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				reads += sum.Reads
				commits += sum.Commits
				errors += sum.Errors
				elapsed += sum.Elapsed
				readP99 = sum.ReadLat.P99
			}
			b.StopTimer()
			if errors != 0 {
				b.Fatalf("loadgen reported %d errors", errors)
			}
			secs := elapsed.Seconds()
			b.ReportMetric(float64(reads)/secs, "reads/s")
			b.ReportMetric(float64(commits)/secs, "commits/s")
			b.ReportMetric(float64(readP99)/1e6, "read-p99-ms")
		})
	}
}
