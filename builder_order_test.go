package decibel_test

// OrderBy/Limit on the query builder: ordered emission in both
// directions, streaming early-exit for Limit alone, the top-k heap
// when both combine, plan-time validation (ErrNoSuchColumn for unknown
// names, ErrBadQuery for projected-out order columns and unsupported
// terminals), and the Context variants.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"decibel"
)

func buildOrderDB(t *testing.T, engine string) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := decibel.NewSchema().Int64("id").Int64("v").Float64("price").Bytes("sku", 8).MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		// Insert out of order so storage order != any column order.
		for _, pk := range []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0} {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, 100-pk)
			rec.SetFloat64(2, float64(pk)*1.5)
			if err := rec.SetBytes(3, []byte(fmt.Sprintf("s%02d", pk))); err != nil {
				return err
			}
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		for pk := int64(10); pk < 15; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, 100-pk)
			rec.SetFloat64(2, float64(pk)*1.5)
			if err := rec.SetBytes(3, []byte(fmt.Sprintf("s%02d", pk))); err != nil {
				return err
			}
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func pks(t *testing.T, rows func(func(*decibel.Record) bool), qErr func() error) []int64 {
	t.Helper()
	var out []int64
	rows(func(rec *decibel.Record) bool {
		out = append(out, rec.PK())
		return true
	})
	if err := qErr(); err != nil {
		t.Fatal(err)
	}
	return out
}

func wantPKs(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := buildOrderDB(t, engine)

			rows, qErr := db.Query("r").On("master").OrderBy("id", false).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

			// Descending by a different column: v = 100-pk, so desc v ==
			// asc pk reversed... v desc -> pk asc.
			rows, qErr = db.Query("r").On("master").OrderBy("v", true).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

			// Float and bytes order columns.
			rows, qErr = db.Query("r").On("master").OrderBy("price", true).Limit(3).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{9, 8, 7})
			rows, qErr = db.Query("r").On("master").OrderBy("sku", false).Limit(2).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{0, 1})

			// Top-k with a predicate: the heap sees only matching rows.
			rows, qErr = db.Query("r").On("master").
				Where(decibel.Col("id").Ge(3)).OrderBy("id", false).Limit(4).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{3, 4, 5, 6})

			// Limit without OrderBy: any 4 distinct rows, streamed.
			rows, qErr = db.Query("r").On("master").Limit(4).Rows()
			if got := pks(t, rows, qErr); len(got) != 4 {
				t.Fatalf("limit-only rows = %v", got)
			}

			// Ordered multi-branch scan: every head row once, ordered.
			rows, qErr = db.Query("r").Heads().OrderBy("id", true).Limit(3).Rows()
			wantPKs(t, pks(t, rows, qErr), []int64{14, 13, 12})

			// Ordered diff: dev-only rows, descending.
			rows, qErr = db.Query("r").OrderBy("id", true).Diff("dev", "master")
			wantPKs(t, pks(t, rows, qErr), []int64{14, 13, 12, 11, 10})

			// Context variant.
			rows, qErr = db.Query("r").On("master").OrderBy("id", false).Limit(1).RowsContext(context.Background())
			wantPKs(t, pks(t, rows, qErr), []int64{0})

			// Plan-time validation.
			_, qErr = db.Query("r").On("master").OrderBy("nope", false).Rows()
			if err := qErr(); !errors.Is(err, decibel.ErrNoSuchColumn) {
				t.Fatalf("unknown order column: %v", err)
			}
			_, qErr = db.Query("r").On("master").Select("v").OrderBy("price", false).Rows()
			if err := qErr(); !errors.Is(err, decibel.ErrBadQuery) {
				t.Fatalf("projected-out order column: %v", err)
			}
			_, qErr2 := db.Query("r").Heads().OrderBy("id", false).Annotated()
			if err := qErr2(); !errors.Is(err, decibel.ErrBadQuery) {
				t.Fatalf("ordered Annotated: %v", err)
			}
			if _, err := db.Query("r").On("master").Limit(3).Count(); !errors.Is(err, decibel.ErrBadQuery) {
				t.Fatalf("limited Count: %v", err)
			}
		})
	}
}

// TestAlterDetachedSession: queuing a schema change on a session
// checked out at a historical commit must fail fast with a clear
// sentinel (ErrSchemaChange wrapping ErrDetachedHead), not a generic
// ErrNotAtHead at commit time.
func TestAlterDetachedSession(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := buildOrderDB(t, engine)
			s, err := db.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.CheckoutAt("master", 0); err != nil { // historical: init commit
				t.Fatal(err)
			}
			err = s.AddColumn("r", decibel.Column{Name: "extra", Type: decibel.Int64}, nil)
			if !errors.Is(err, decibel.ErrSchemaChange) || !errors.Is(err, decibel.ErrDetachedHead) {
				t.Fatalf("AddColumn on detached session: %v", err)
			}
			if errors.Is(err, decibel.ErrNotAtHead) {
				t.Fatalf("detached alter still surfaces ErrNotAtHead: %v", err)
			}
			err = s.DropColumn("r", "v")
			if !errors.Is(err, decibel.ErrSchemaChange) || !errors.Is(err, decibel.ErrDetachedHead) {
				t.Fatalf("DropColumn on detached session: %v", err)
			}
			if s.PendingSchemaChanges() != 0 {
				t.Fatal("detached session queued schema changes")
			}
		})
	}
}
