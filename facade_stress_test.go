package decibel_test

// Concurrent-session stress over the facade: parallel name-based
// commits on diverging branches, plus writers racing on one shared
// branch and readers scanning throughout. Run with -race; the test
// asserts every branch ends with exactly the records its writers
// committed and that same-branch committers serialized.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decibel"
	"decibel/internal/core"
)

func TestConcurrentNameBasedCommits(t *testing.T) {
	const (
		branches        = 4
		commitsPer      = 5
		recordsPerRound = 20
	)
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int64("writer").Int64("round").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}

			// Diverging branches, one writer each, all committing in
			// parallel through the name-based API.
			names := make([]string, branches)
			for i := range names {
				names[i] = fmt.Sprintf("worker-%d", i)
				if _, err := db.Branch("master", names[i]); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, branches*commitsPer)
			for w, name := range names {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for round := 0; round < commitsPer; round++ {
						_, err := db.Commit(name, func(tx *decibel.Tx) error {
							tx.SetMessage(fmt.Sprintf("%s round %d", name, round))
							for i := 0; i < recordsPerRound; i++ {
								rec := decibel.NewRecord(schema)
								rec.SetPK(int64(round*recordsPerRound + i))
								rec.Set(1, int64(w))
								rec.Set(2, int64(round))
								if err := tx.Insert("r", rec); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							errs <- fmt.Errorf("%s round %d: %w", name, round, err)
							return
						}
					}
				}()
			}
			// Concurrent readers: iterate master and the workers' heads
			// while the writers commit.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						for _, b := range append([]string{"master"}, names...) {
							rows, scanErr := db.Rows("r", b)
							for range rows {
							}
							if err := scanErr(); err != nil {
								errs <- fmt.Errorf("reader on %s: %w", b, err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Every branch holds exactly its writer's records.
			for w, name := range names {
				n := 0
				rows, scanErr := db.Rows("r", name)
				for rec := range rows {
					if got := rec.Get(1); got != int64(w) {
						t.Fatalf("%s holds a record from writer %d", name, got)
					}
					n++
				}
				if err := scanErr(); err != nil {
					t.Fatal(err)
				}
				if n != commitsPer*recordsPerRound {
					t.Fatalf("%s has %d records, want %d", name, n, commitsPer*recordsPerRound)
				}
			}
		})
	}
}

// TestConcurrentParallelScans: parallel scans racing committing
// writers, branch creation and a schema-epoch rotation, on every
// engine with the scan pool forced on. Writers commit whole batches to
// their own branches, so any reader snapshot must contain only that
// branch's writer and a whole number of batches (a torn snapshot shows
// either a foreign writer id or a partial batch), and per-branch
// visible counts never run backwards. Ends with a CloseContext drain
// racing in-flight parallel scans.
func TestConcurrentParallelScans(t *testing.T) {
	const (
		writers         = 4
		commitsPer      = 6
		recordsPerRound = 30
	)
	scansBefore, _ := core.ParallelScanCounters()
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, err := decibel.Open(t.TempDir(), decibel.WithEngine(engine), decibel.WithScanWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int64("writer").Int64("round").MustBuild()
			if _, err := db.CreateTable("r", schema); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Init("init"); err != nil {
				t.Fatal(err)
			}
			names := make([]string, writers)
			for w := range names {
				names[w] = fmt.Sprintf("worker-%d", w)
				if _, err := db.Branch("master", names[w]); err != nil {
					t.Fatal(err)
				}
			}

			var (
				wg          sync.WaitGroup
				writersLeft atomic.Int64
				mu          sync.Mutex
				failures    []string
			)
			failf := func(format string, args ...any) {
				mu.Lock()
				defer mu.Unlock()
				failures = append(failures, fmt.Sprintf(format, args...))
			}
			writersLeft.Store(writers)

			for w, name := range names {
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer writersLeft.Add(-1)
					for round := 0; round < commitsPer; round++ {
						_, err := db.Commit(name, func(tx *decibel.Tx) error {
							recs := make([]*decibel.Record, 0, recordsPerRound)
							for i := 0; i < recordsPerRound; i++ {
								rec := decibel.NewRecord(schema)
								rec.SetPK(int64(round*recordsPerRound + i))
								rec.Set(1, int64(w))
								rec.Set(2, int64(round))
								recs = append(recs, rec)
							}
							return tx.InsertBatch("r", recs)
						})
						if err != nil {
							failf("%s round %d: %v", name, round, err)
							return
						}
						// Mid-run structural churn racing the scans: a branch
						// off this head (freezing it on segment engines), and
						// one schema-epoch rotation on master.
						if round == 2 {
							if _, err := db.Branch(name, name+"-mid"); err != nil {
								failf("%s mid-branch: %v", name, err)
								return
							}
						}
						if w == 0 && round == 3 {
							if _, err := db.Commit("master", func(tx *decibel.Tx) error {
								return tx.AddColumn("r", decibel.Column{Name: "extra", Type: decibel.Int64}, decibel.Default(int64(-1)))
							}); err != nil {
								failf("schema rotation: %v", err)
								return
							}
						}
					}
				}()
			}

			// Readers: plain rows, ordered+limited rows, aggregates, diff
			// and heads — all through the parallel executor.
			for r := 0; r < 6; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lastCount := make(map[string]int)
					for writersLeft.Load() > 0 {
						for w, name := range names {
							n := 0
							rows, scanErr := db.Query("r").On(name).Rows()
							for rec := range rows {
								if got := rec.Get(1); got != int64(w) {
									failf("%s snapshot holds writer %d", name, got)
									return
								}
								n++
							}
							if err := scanErr(); err != nil {
								failf("rows on %s: %v", name, err)
								return
							}
							if n%recordsPerRound != 0 {
								failf("%s snapshot has %d records: torn batch", name, n)
								return
							}
							if n < lastCount[name] {
								failf("%s visible count ran backwards: %d after %d", name, n, lastCount[name])
								return
							}
							lastCount[name] = n

							k := 0
							rows, scanErr = db.Query("r").On(name).OrderBy("id", false).Limit(10).Rows()
							for rec := range rows {
								if got := rec.Get(1); got != int64(w) {
									failf("%s ordered snapshot holds writer %d", name, got)
									return
								}
								k++
							}
							if err := scanErr(); err != nil {
								failf("ordered rows on %s: %v", name, err)
								return
							}
							if k > 10 {
								failf("limit 10 emitted %d rows", k)
								return
							}
						}
						if _, err := db.Query("r").Heads().Count(); err != nil {
							failf("heads count: %v", err)
							return
						}
						rows, scanErr := db.Query("r").Diff(names[0], names[1])
						for rec := range rows {
							if got := rec.Get(1); got != 0 {
								failf("diff %s\\%s emitted writer %d", names[0], names[1], got)
								return
							}
						}
						if err := scanErr(); err != nil {
							failf("diff: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if len(failures) > 0 {
				t.Fatalf("%d failures, first: %s", len(failures), failures[0])
			}

			// CloseContext drains in-flight parallel scans: fire scans and
			// close concurrently; scans either complete or fail with
			// ErrDatabaseClosed, and the drain itself must succeed.
			var rg sync.WaitGroup
			for r := 0; r < 4; r++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					for i := 0; i < 50; i++ {
						if _, err := db.Query("r").On(names[0]).Count(); err != nil {
							if !errors.Is(err, decibel.ErrDatabaseClosed) {
								failf("scan during drain: %v", err)
							}
							return
						}
					}
				}()
			}
			if err := db.CloseContext(context.Background()); err != nil {
				t.Fatalf("CloseContext during parallel scans: %v", err)
			}
			rg.Wait()
			if len(failures) > 0 {
				t.Fatalf("%d failures, first: %s", len(failures), failures[0])
			}
		})
	}
	if scansAfter, _ := core.ParallelScanCounters(); scansAfter == scansBefore {
		t.Fatal("stress run never engaged the parallel executor")
	}
}

// TestConcurrentSameBranchCommits: many goroutines commit to ONE
// branch; CheckoutForWrite's lock-then-read-head ordering must
// serialize them so every commit lands and none fails ErrNotAtHead.
func TestConcurrentSameBranchCommits(t *testing.T) {
	const writers = 8
	db, err := decibel.Open(t.TempDir(), decibel.WithEngine("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int64("writer").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Commit("master", func(tx *decibel.Tx) error {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(w))
				rec.Set(1, int64(w))
				return tx.Insert("r", rec)
			})
			if err != nil {
				errs <- fmt.Errorf("writer %d: %w", w, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	n := 0
	rows, scanErr := db.Rows("r", "master")
	for range rows {
		n++
	}
	if err := scanErr(); err != nil {
		t.Fatal(err)
	}
	if n != writers {
		t.Fatalf("master has %d records, want %d", n, writers)
	}
	// One commit per writer on top of init.
	master, err := db.BranchNamed("master")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Graph().CommitsOnBranch(master.ID)); got != writers+1 {
		t.Fatalf("master has %d commits, want %d", got, writers+1)
	}
}

// TestAbortedCommitRollsBack: a failing Commit callback must leave no
// residue on the branch head — its inserts, updates, and deletes are
// all reverted to the last committed state, and the next successful
// commit must not pick any of them up.
func TestAbortedCommitRollsBack(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, _, _ := openSeeded(t, engine) // pks 1..10, v=pk, committed
			defer db.Close()
			schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()

			boom := errors.New("boom")
			_, err := db.Commit("master", func(tx *decibel.Tx) error {
				up := decibel.NewRecord(schema)
				up.SetPK(3)
				up.Set(1, 999) // update an existing key
				if err := tx.Insert("r", up); err != nil {
					return err
				}
				fresh := decibel.NewRecord(schema)
				fresh.SetPK(42)
				fresh.Set(1, 1) // insert a new key
				if err := tx.Insert("r", fresh); err != nil {
					return err
				}
				if err := tx.Delete("r", 7); err != nil { // delete a committed key
					return err
				}
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("aborted commit returned %v, want the callback's error", err)
			}

			check := func(phase string) {
				t.Helper()
				got := map[int64]int64{}
				rows, scanErr := db.Rows("r", "master")
				for rec := range rows {
					got[rec.PK()] = rec.Get(1)
				}
				if err := scanErr(); err != nil {
					t.Fatal(err)
				}
				if len(got) != 10 {
					t.Fatalf("%s: head has %d records, want the committed 10", phase, len(got))
				}
				if got[3] != 3 {
					t.Fatalf("%s: pk 3 = %d, want committed 3", phase, got[3])
				}
				if _, ok := got[42]; ok {
					t.Fatalf("%s: aborted insert of pk 42 visible", phase)
				}
				if got[7] != 7 {
					t.Fatalf("%s: pk 7 = %d, want committed 7 (aborted delete leaked)", phase, got[7])
				}
			}
			check("after abort")

			// The next successful commit must not make any residue durable.
			if _, err := db.Commit("master", func(tx *decibel.Tx) error { return nil }); err != nil {
				t.Fatal(err)
			}
			check("after next commit")
		})
	}
}

// TestMergeSerializesWithCommit: a merge racing an in-flight Commit on
// the target branch must wait for the transaction's exclusive lock, so
// it never snapshots a half-applied transaction.
func TestMergeSerializesWithCommit(t *testing.T) {
	db, _, _ := openSeeded(t, "hybrid")
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.Branch("master", "dev"); err != nil {
		t.Fatal(err)
	}

	const batch = 50
	inTx := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := db.Commit("master", func(tx *decibel.Tx) error {
			for i := 0; i < batch; i++ {
				rec := decibel.NewRecord(schema)
				rec.SetPK(int64(100 + i))
				rec.Set(1, 1)
				if err := tx.Insert("r", rec); err != nil {
					return err
				}
				if i == batch/2 {
					close(inTx) // half the writes applied; let the merge race
					<-release
				}
			}
			return nil
		})
		done <- err
	}()

	<-inTx
	mergeDone := make(chan error, 1)
	go func() {
		_, _, err := db.Merge("master", "dev")
		mergeDone <- err
	}()
	select {
	case err := <-mergeDone:
		t.Fatalf("merge finished while the transaction held the branch lock (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Merge is blocked on master's exclusive lock, as it must be.
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-mergeDone; err != nil {
		t.Fatal(err)
	}

	// The merge committed after the transaction: all batch records plus
	// the seed are on master, and the merge commit is the head.
	n := 0
	rows, scanErr := db.Rows("r", "master")
	for range rows {
		n++
	}
	if err := scanErr(); err != nil {
		t.Fatal(err)
	}
	if n != 10+batch {
		t.Fatalf("master has %d records, want %d", n, 10+batch)
	}
}
