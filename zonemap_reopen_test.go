package decibel_test

// Zone-map persistence: maps must survive close/reopen through the
// engines' catalogs, be rebuilt transparently for directories whose
// catalogs predate them (legacy format), and keep pruned scans correct
// either way.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
	"decibel/internal/store"
)

// segmentZoned reports whether any segment stat carries a non-empty
// zone (min/max rendered, i.e. not "-").
func segmentZoned(stats []decibel.SegmentStat) bool {
	for _, sg := range stats {
		for _, z := range sg.Zones {
			if z.Min != "-" {
				return true
			}
		}
	}
	return false
}

// scanWhere runs a pruned single-branch scan and returns the row count.
func scanWhere(t *testing.T, db *decibel.DB, where iquery.Expr) int {
	t.Helper()
	c, err := iquery.Plan{Table: "r", Branches: []string{"master"}, AtSeq: -1, Where: where}.Compile(db.Database)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := c.Scan(context.Background(), func(*record.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestZoneMapsSurviveReopen(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			func() {
				db := buildPruningDBAt(t, dir, engine)
				defer db.Close()
				if !segmentZoned(tableStats(t, db)) {
					t.Fatal("no zones before close")
				}
			}()

			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if !segmentZoned(tableStats(t, db)) {
				t.Fatal("zones lost across reopen")
			}
			// Pruned scans stay correct, and pruning engages on the
			// reopened dataset (the maps came back usable, persisted or
			// rebuilt).
			_, skippedBefore := store.SegmentScanCounters()
			if got := scanWhere(t, db, iquery.Col("v").Ge(100)); got != 50 {
				t.Fatalf("v>=100 after reopen = %d rows, want 50", got)
			}
			if got := scanWhere(t, db, iquery.Col("v").Lt(10)); got != 10 {
				t.Fatalf("v<10 after reopen = %d rows, want 10", got)
			}
			if _, skippedAfter := store.SegmentScanCounters(); skippedAfter == skippedBefore && engine != "tuple-first" {
				// tf keeps one extent per schema epoch, so a two-extent heap
				// may legitimately have nothing to skip for one predicate;
				// segment-per-branch engines must skip here.
				t.Fatal("no segment skipped after reopen")
			}
		})
	}
}

// TestZoneMapsLegacyRebuild strips the persisted zone maps from the
// engine catalogs — simulating a directory written before zone maps
// existed — and verifies reopen rebuilds them from the heap files.
func TestZoneMapsLegacyRebuild(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			func() {
				db := buildPruningDBAt(t, dir, engine)
				defer db.Close()
			}()

			stripped := 0
			for _, name := range []string{"extents.json", "segments.json"} {
				matches, err := filepath.Glob(filepath.Join(dir, "tables", "*", name))
				if err != nil {
					t.Fatal(err)
				}
				for _, path := range matches {
					stripped += stripZones(t, path)
				}
			}
			if stripped == 0 {
				t.Fatal("no zone entries found to strip — persistence broken?")
			}

			db, err := decibel.Open(dir, decibel.WithEngine(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if !segmentZoned(tableStats(t, db)) {
				t.Fatal("zones not rebuilt for the legacy directory")
			}
			if got := scanWhere(t, db, iquery.Col("v").Ge(100)); got != 50 {
				t.Fatalf("v>=100 after legacy rebuild = %d rows, want 50", got)
			}
		})
	}
}

// stripZones removes every "zone" key from a JSON catalog, returning
// how many it removed.
func stripZones(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	n := 0
	var walk func(v any)
	walk = func(v any) {
		switch x := v.(type) {
		case map[string]any:
			if _, ok := x["zone"]; ok {
				delete(x, "zone")
				n++
			}
			for _, child := range x {
				walk(child)
			}
		case []any:
			for _, child := range x {
				walk(child)
			}
		}
	}
	walk(doc)
	if n == 0 {
		return 0
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return n
}

func tableStats(t *testing.T, db *decibel.DB) []decibel.SegmentStat {
	t.Helper()
	tbl, err := db.TableByName("r")
	if err != nil {
		t.Fatal(err)
	}
	stats := tbl.SegmentStats()
	if len(stats) == 0 {
		t.Fatal("engine reports no segment stats")
	}
	return stats
}

// buildPruningDBAt is buildPruningDB into a caller-owned directory
// (for close/reopen tests).
func buildPruningDBAt(t *testing.T, dir, engine string) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(dir, decibel.WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	base := decibel.NewSchema().Int64("id").Int64("v").Bytes("sku", 8).MustBuild()
	if _, err := db.CreateTable("r", base); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	load := func(branch string, s *decibel.Schema, lo, hi int64, tag byte) {
		t.Helper()
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo)
			for pk := lo; pk < hi; pk++ {
				rec := decibel.NewRecord(s)
				rec.SetPK(pk)
				rec.Set(1, pk)
				if err := rec.SetBytes(2, []byte(fmt.Sprintf("%c%03d", tag, pk))); err != nil {
					return err
				}
				if i := s.ColumnIndex("price"); i >= 0 {
					rec.SetFloat64(i, float64(pk))
				}
				recs = append(recs, rec)
			}
			return tx.InsertBatch("r", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}
	load("master", base, 0, 50, 'a')
	if _, err := db.Branch("master", "b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		return tx.AddColumn("r", decibel.Column{Name: "price", Type: decibel.Float64}, decibel.Default(7.5))
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.TableByName("r")
	if err != nil {
		t.Fatal(err)
	}
	load("master", tbl.Schema(), 50, 100, 'b')
	if _, err := db.Branch("master", "b2"); err != nil {
		t.Fatal(err)
	}
	load("master", tbl.Schema(), 100, 150, 'c')
	return db
}
