package decibel_test

// Wire round-trips for the relational-algebra clauses of /v1/query:
// join compositions and grouped aggregations issued through
// decibel/client must return exactly what the facade computes locally
// on the same database, and each failure class of the new clauses must
// arrive as its documented stable error code.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"decibel"
	"decibel/client"
)

// newJoinServeClient mounts a server over the three-table join dataset.
func newJoinServeClient(t *testing.T, engine string) (*decibel.DB, *client.Client) {
	t.Helper()
	db := buildJoinDB(t, engine)
	ts := httptest.NewServer(decibel.NewServer(db).Handler())
	t.Cleanup(ts.Close)
	return db, client.New(ts.URL)
}

// wireKey renders one group key value off the wire (numbers decode as
// json.Number) the way formatGroup renders the facade's.
func wireKey(v any) string {
	if n, ok := v.(json.Number); ok {
		if i, err := n.Int64(); err == nil {
			return fmt.Sprintf("%v", i)
		}
		f, _ := n.Float64()
		return fmt.Sprintf("%v", f)
	}
	return fmt.Sprintf("%v", v)
}

func TestServeJoinRoundTrip(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, c := newJoinServeClient(t, engine)
			ctx := context.Background()

			req := client.QueryRequest{
				Table: "orders", Branches: []string{"master"},
				Where: &client.Expr{Col: "qty", Op: "lt", Val: 2},
				Join: []client.JoinClause{
					{Table: "users", On: [2]string{"user_id", "id"}},
					{Table: "items", On: [2]string{"item_id", "id"},
						Where: &client.Expr{Col: "price", Op: "lt", Val: 8.5}},
				},
			}
			resp, err := c.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}

			mk := func() *decibel.Query {
				return db.Query("orders").On("master").Where(decibel.Col("qty").Lt(2)).
					JoinOn(db.Query("users"), decibel.On("user_id", "id")).
					JoinOn(db.Query("items").Where(decibel.Col("price").Lt(8.5)), decibel.On("item_id", "id"))
			}
			tuples, errFn := mk().Tuples()
			var local []decibel.JoinTuple
			for tup := range tuples {
				cp := make(decibel.JoinTuple, len(tup))
				for i, rec := range tup {
					cp[i] = rec.Clone()
				}
				local = append(local, cp)
			}
			if err := errFn(); err != nil {
				t.Fatal(err)
			}
			if len(local) == 0 {
				t.Fatal("join fixture selected no tuples; the round-trip checks nothing")
			}
			if resp.Count != len(resp.Tuples) || len(resp.Tuples) != len(local) {
				t.Fatalf("wire count=%d tuples=%d, facade %d", resp.Count, len(resp.Tuples), len(local))
			}
			for i, wt := range resp.Tuples {
				if len(wt) != len(local[i]) {
					t.Fatalf("tuple %d: wire %d relations, facade %d", i, len(wt), len(local[i]))
				}
				for r, row := range wt {
					if got, want := rowInt(t, row, "id"), local[i][r].PK(); got != want {
						t.Fatalf("tuple %d relation %d: wire pk %d, facade pk %d", i, r, got, want)
					}
				}
			}

			// DeclaredOrder pins execution order, never results.
			declared, err := c.Query(ctx, func() client.QueryRequest { r := req; r.DeclaredOrder = true; return r }())
			if err != nil {
				t.Fatal(err)
			}
			if len(declared.Tuples) != len(resp.Tuples) {
				t.Fatalf("declared order returned %d tuples, greedy %d", len(declared.Tuples), len(resp.Tuples))
			}
			for i := range declared.Tuples {
				for r := range declared.Tuples[i] {
					if rowInt(t, declared.Tuples[i][r], "id") != rowInt(t, resp.Tuples[i][r], "id") {
						t.Fatalf("declared order diverged from greedy at tuple %d relation %d", i, r)
					}
				}
			}

			// A leg pinned to another branch scans that branch's head: the
			// alt branch deleted orders 0..29, so joining users against alt
			// from a master root still works while rooting on alt shrinks.
			altResp, err := c.Query(ctx, client.QueryRequest{
				Table: "orders", Branches: []string{"alt"},
				Where: &client.Expr{Col: "qty", Op: "lt", Val: 2},
				Join:  []client.JoinClause{{Table: "users", Branch: "master", On: [2]string{"user_id", "id"}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			n, err := db.Query("orders").On("alt").Where(decibel.Col("qty").Lt(2)).
				JoinOn(db.Query("users").On("master"), decibel.On("user_id", "id")).Count()
			if err != nil {
				t.Fatal(err)
			}
			if altResp.Count != n {
				t.Fatalf("alt-rooted join: wire %d tuples, facade %d", altResp.Count, n)
			}
		})
	}
}

func TestServeGroupByRoundTrip(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db, c := newJoinServeClient(t, engine)
			ctx := context.Background()

			// Single-table grouping.
			resp, err := c.Query(ctx, client.QueryRequest{
				Table: "orders", Branches: []string{"master"},
				GroupBy: []string{"qty"},
				Aggs:    []client.AggClause{{Agg: "count"}, {Agg: "sum", Col: "item_id"}, {Agg: "avg", Col: "user_id"}},
			})
			if err != nil {
				t.Fatal(err)
			}
			groups, errFn := db.Query("orders").On("master").GroupBy("qty").
				Groups(decibel.Count(), decibel.Sum("item_id"), decibel.Avg("user_id"))
			var local []string
			for g := range groups {
				local = append(local, formatGroup(g.Key, g.Aggs))
			}
			if err := errFn(); err != nil {
				t.Fatal(err)
			}
			if resp.Count != len(resp.Groups) || len(resp.Groups) != len(local) {
				t.Fatalf("wire count=%d groups=%d, facade %d", resp.Count, len(resp.Groups), len(local))
			}
			for i, g := range resp.Groups {
				keys := make([]any, len(g.Key))
				for k, v := range g.Key {
					keys[k] = wireKey(v)
				}
				got := formatGroup(keys, g.Aggs)
				if got != local[i] {
					t.Fatalf("group %d: wire %q, facade %q", i, got, local[i])
				}
			}

			// Grouping over a join composition, keyed across relations.
			jresp, err := c.Query(ctx, client.QueryRequest{
				Table: "orders", Branches: []string{"master"},
				Join:    []client.JoinClause{{Table: "users", On: [2]string{"user_id", "id"}}},
				GroupBy: []string{"region"},
				Aggs:    []client.AggClause{{Agg: "count"}, {Agg: "sum", Col: "qty"}},
			})
			if err != nil {
				t.Fatal(err)
			}
			jgroups, jerrFn := db.Query("orders").On("master").
				JoinOn(db.Query("users"), decibel.On("user_id", "id")).
				GroupBy("region").Groups(decibel.Count(), decibel.Sum("qty"))
			var jlocal []string
			for g := range jgroups {
				jlocal = append(jlocal, formatGroup(g.Key, g.Aggs))
			}
			if err := jerrFn(); err != nil {
				t.Fatal(err)
			}
			if len(jresp.Groups) != len(jlocal) {
				t.Fatalf("joined grouping: wire %d groups, facade %d", len(jresp.Groups), len(jlocal))
			}
			for i, g := range jresp.Groups {
				keys := make([]any, len(g.Key))
				for k, v := range g.Key {
					keys[k] = wireKey(v)
				}
				if got := formatGroup(keys, g.Aggs); got != jlocal[i] {
					t.Fatalf("joined group %d: wire %q, facade %q", i, got, jlocal[i])
				}
			}
		})
	}
}

// TestServeJoinGroupErrorCodes extends the protocol's stable error
// mapping to the join and groupBy clauses.
func TestServeJoinGroupErrorCodes(t *testing.T) {
	_, c := newJoinServeClient(t, "hybrid")
	ctx := context.Background()
	root := func() client.QueryRequest {
		return client.QueryRequest{Table: "orders", Branches: []string{"master"}}
	}

	cases := []struct {
		name   string
		req    client.QueryRequest
		status int
		code   string
	}{
		{"join_float_key", func() client.QueryRequest {
			r := root()
			r.Join = []client.JoinClause{{Table: "items", On: [2]string{"qty", "price"}}}
			return r
		}(), 400, "bad_query"},
		{"join_key_type_mismatch", func() client.QueryRequest {
			r := root()
			r.Join = []client.JoinClause{{Table: "users", On: [2]string{"user_id", "name"}}}
			return r
		}(), 400, "type_mismatch"},
		{"join_unknown_key", func() client.QueryRequest {
			r := root()
			r.Join = []client.JoinClause{{Table: "users", On: [2]string{"nope", "id"}}}
			return r
		}(), 400, "no_such_column"},
		{"join_unknown_table", func() client.QueryRequest {
			r := root()
			r.Join = []client.JoinClause{{Table: "nope", On: [2]string{"user_id", "id"}}}
			return r
		}(), 404, "no_such_table"},
		{"join_with_heads", func() client.QueryRequest {
			r := client.QueryRequest{Table: "orders", Heads: true}
			r.Join = []client.JoinClause{{Table: "users", On: [2]string{"user_id", "id"}}}
			return r
		}(), 400, "bad_request"},
		{"groupby_unknown_column", func() client.QueryRequest {
			r := root()
			r.GroupBy = []string{"nope"}
			return r
		}(), 400, "no_such_column"},
		{"groupby_with_orderby", func() client.QueryRequest {
			r := root()
			r.GroupBy = []string{"qty"}
			r.OrderBy = "qty"
			return r
		}(), 400, "bad_query"},
		{"groupby_agg_over_bytes", func() client.QueryRequest {
			r := client.QueryRequest{Table: "users", Branches: []string{"master"}}
			r.GroupBy = []string{"region"}
			r.Aggs = []client.AggClause{{Agg: "sum", Col: "name"}}
			return r
		}(), 400, "type_mismatch"},
		{"aggs_without_groupby", func() client.QueryRequest {
			r := root()
			r.Aggs = []client.AggClause{{Agg: "count"}}
			return r
		}(), 400, "bad_request"},
		{"scalar_agg_with_groupby", func() client.QueryRequest {
			r := root()
			r.GroupBy = []string{"qty"}
			r.Agg = "count"
			return r
		}(), 400, "bad_request"},
		{"unknown_group_agg", func() client.QueryRequest {
			r := root()
			r.GroupBy = []string{"qty"}
			r.Aggs = []client.AggClause{{Agg: "median", Col: "qty"}}
			return r
		}(), 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Query(ctx, tc.req)
			var ce *client.Error
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *client.Error", err, err)
			}
			if ce.Status != tc.status || ce.Code != tc.code {
				t.Fatalf("err = (%d, %q), want (%d, %q): %v", ce.Status, ce.Code, tc.status, tc.code, ce)
			}
		})
	}
}
