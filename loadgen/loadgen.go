// Package loadgen drives mixed read/commit traffic against a decibel
// serve endpoint through the decibel/client package: N concurrent
// clients, a configurable commit fraction, per-operation latency
// collection. It is the engine behind cmd/decibel-loadgen, the serving
// benchmark and the CI smoke job, so its Summary is the one shape all
// three consume.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"decibel/client"
)

// Config parameterizes one load-generation run.
type Config struct {
	URL    string // base URL of the server, e.g. "http://localhost:8527"
	Table  string // table to read and write
	Branch string // branch all traffic addresses

	Clients    int           // concurrent workers (default 8)
	Duration   time.Duration // wall-clock run length (default 5s)
	CommitFrac float64       // fraction of operations that are commits (default 0.2)
	Keys       int64         // primary keys drawn from [0, Keys) (default 10000)
	BatchSize  int           // records per commit transaction (default 4)
	Seed       int64         // base RNG seed; worker i uses Seed+i
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Clients <= 0 {
		out.Clients = 8
	}
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.CommitFrac < 0 {
		out.CommitFrac = 0
	}
	if out.CommitFrac == 0 {
		out.CommitFrac = 0.2
	}
	if out.Keys <= 0 {
		out.Keys = 10000
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 4
	}
	if out.Table == "" {
		out.Table = "r"
	}
	if out.Branch == "" {
		out.Branch = "master"
	}
	return out
}

// Latency summarizes one operation class's latency distribution.
type Latency struct {
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

func (l Latency) String() string {
	if l.Count == 0 {
		return "none"
	}
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v", l.Count, l.P50, l.P90, l.P99, l.Max)
}

// Summary is the outcome of a Run.
type Summary struct {
	Clients  int           `json:"clients"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Reads    int64         `json:"reads"`
	Commits  int64         `json:"commits"`
	Rows     int64         `json:"rows"`   // rows received across all reads
	Errors   int64         `json:"errors"` // failed operations (shutdown cancellations excluded)
	LastErr  string        `json:"last_err,omitempty"`
	ReadLat  Latency       `json:"read_latency"`
	WriteLat Latency       `json:"commit_latency"`
}

func (s *Summary) String() string {
	var b strings.Builder
	secs := s.Elapsed.Seconds()
	fmt.Fprintf(&b, "loadgen: %d clients, %.1fs\n", s.Clients, secs)
	fmt.Fprintf(&b, "  reads:   %6d (%.0f/s, %d rows)  %s\n", s.Reads, float64(s.Reads)/secs, s.Rows, s.ReadLat)
	fmt.Fprintf(&b, "  commits: %6d (%.0f/s)  %s\n", s.Commits, float64(s.Commits)/secs, s.WriteLat)
	fmt.Fprintf(&b, "  errors:  %6d", s.Errors)
	if s.LastErr != "" {
		fmt.Fprintf(&b, "  (last: %s)", s.LastErr)
	}
	b.WriteByte('\n')
	return b.String()
}

// worker accumulates one goroutine's results, merged after the run so
// the hot path never takes a lock.
type worker struct {
	reads, commits, rows, errs int64
	lastErr                    error
	readLat, writeLat          []time.Duration
}

// Run drives the configured mix until the duration elapses or ctx is
// canceled. An unreachable server fails fast; per-operation failures
// are counted (not fatal) so a run reports the server's behavior under
// sustained pressure rather than stopping at the first refusal.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	c := client.New(cfg.URL)

	// One up-front schema fetch: value generation follows the table's
	// columns, so the generator works against any init schema.
	tables, err := c.Tables(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching schema: %w", err)
	}
	var cols []client.ColumnDef
	for _, t := range tables {
		if t.Name == cfg.Table {
			cols = t.Columns
		}
	}
	if cols == nil {
		return nil, fmt.Errorf("loadgen: server has no table %q", cfg.Table)
	}

	rctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	start := time.Now()
	workers := make([]worker, cfg.Clients)
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(w *worker, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for rctx.Err() == nil {
				if rng.Float64() < cfg.CommitFrac {
					w.commit(rctx, c, cfg, cols, rng)
				} else {
					w.read(rctx, c, cfg, rng)
				}
			}
		}(&workers[i], cfg.Seed+int64(i))
	}
	wg.Wait()

	sum := &Summary{Clients: cfg.Clients, Elapsed: time.Since(start)}
	var readLat, writeLat []time.Duration
	for i := range workers {
		w := &workers[i]
		sum.Reads += w.reads
		sum.Commits += w.commits
		sum.Rows += w.rows
		sum.Errors += w.errs
		if w.lastErr != nil {
			sum.LastErr = w.lastErr.Error()
		}
		readLat = append(readLat, w.readLat...)
		writeLat = append(writeLat, w.writeLat...)
	}
	sum.ReadLat = summarize(readLat)
	sum.WriteLat = summarize(writeLat)
	return sum, nil
}

// note records one operation's outcome. Failures caused by the run
// ending (context deadline) are neither errors nor samples.
func (w *worker) note(ctx context.Context, lat *[]time.Duration, d time.Duration, err error) bool {
	if err != nil {
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return false
		}
		w.errs++
		w.lastErr = err
		return false
	}
	*lat = append(*lat, d)
	return true
}

func (w *worker) read(ctx context.Context, c *client.Client, cfg Config, rng *rand.Rand) {
	req := client.QueryRequest{Table: cfg.Table, Branches: []string{cfg.Branch}}
	switch rng.Intn(3) {
	case 0: // point read by primary key
		req.Where = &client.Expr{Col: "id", Op: "eq", Val: rng.Int63n(cfg.Keys)}
	case 1: // short range scan
		lo := rng.Int63n(cfg.Keys)
		req.Where = &client.Expr{And: []client.Expr{
			{Col: "id", Op: "ge", Val: lo},
			{Col: "id", Op: "lt", Val: lo + 64},
		}}
	default: // count over the branch head
		req.Agg = "count"
	}
	t0 := time.Now()
	resp, err := c.Query(ctx, req)
	if w.note(ctx, &w.readLat, time.Since(t0), err) {
		w.reads++
		w.rows += int64(len(resp.Rows))
	}
}

func (w *worker) commit(ctx context.Context, c *client.Client, cfg Config, cols []client.ColumnDef, rng *rand.Rand) {
	ops := make([]client.Op, cfg.BatchSize)
	for i := range ops {
		ops[i] = client.Op{Op: "insert", Table: cfg.Table, Values: randomValues(cols, cfg.Keys, rng)}
	}
	t0 := time.Now()
	_, err := c.Commit(ctx, client.CommitRequest{Branch: cfg.Branch, Ops: ops})
	if w.note(ctx, &w.writeLat, time.Since(t0), err) {
		w.commits++
	}
}

// randomValues draws one record's values from the schema: the leading
// column is the primary key in [0, keys), the rest follow their types.
func randomValues(cols []client.ColumnDef, keys int64, rng *rand.Rand) map[string]any {
	values := make(map[string]any, len(cols))
	for i, col := range cols {
		if i == 0 {
			values[col.Name] = rng.Int63n(keys)
			continue
		}
		switch col.Type {
		case "float64":
			values[col.Name] = rng.Float64() * 1000
		case "bytes":
			n := col.Cap
			if n > 12 {
				n = 12
			}
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			values[col.Name] = string(b)
		default: // int32 | int64
			values[col.Name] = rng.Int63n(1 << 20)
		}
	}
	return values
}

func summarize(lat []time.Duration) Latency {
	if len(lat) == 0 {
		return Latency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return Latency{
		Count: int64(len(lat)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   lat[len(lat)-1],
	}
}
