package decibel_test

// Parallel scan cancellation: canceling the context of a parallel scan
// must surface context.Canceled, stop emission within one record, leave
// no goroutine behind (the pool is semaphore-bounded with per-scan
// goroutines, so an abandoned scan's workers drain on their own), and
// leave the pool reusable for the next scan. The package-wide
// goroutine-leak gate lives in TestMain (bench_test.go).

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"decibel"
)

// settledGoroutines polls until the live goroutine count drops to at
// most want, returning the last observed count. Background runtime
// goroutines start lazily, so an exact match is not expected — callers
// pass a small tolerance.
func settledGoroutines(want int, wait time.Duration) int {
	deadline := time.Now().Add(wait)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestParallelScanCancellation(t *testing.T) {
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			before := runtime.NumGoroutine()
			db := buildPruningDB(t, engine, decibel.WithScanWorkers(4))

			// A context canceled before the scan starts fails immediately
			// with Canceled and emits nothing.
			pre, preCancel := context.WithCancel(context.Background())
			preCancel()
			seq, errFn := db.Query("r").On("master").RowsContext(pre)
			emitted := 0
			seq(func(*decibel.Record) bool { emitted++; return true })
			if err := errFn(); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled scan: err=%v, want context.Canceled", err)
			}
			if emitted != 0 {
				t.Fatalf("pre-canceled scan emitted %d rows", emitted)
			}
			if _, err := db.Query("r").On("master").CountContext(pre); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled aggregate did not fail with Canceled")
			}

			// Canceling mid-iteration: the stream must stop within one
			// record of the cancel and the error accessor must report it.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			seq, errFn = db.Query("r").On("master").RowsContext(ctx)
			after := 0
			seq(func(*decibel.Record) bool {
				if after == 0 {
					cancel()
				}
				after++
				return true
			})
			if err := errFn(); !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-scan cancel: err=%v, want context.Canceled", err)
			}
			if after > 2 {
				t.Fatalf("scan emitted %d rows after cancellation; want <= 2", after)
			}

			// Cancel racing the workers themselves: fire scans while a
			// sibling goroutine cancels at a random point. Whatever the
			// timing, the only acceptable outcomes are a complete result
			// or context.Canceled.
			want, err := db.Query("r").On("master").Count()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				rctx, rcancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func() {
					defer close(done)
					time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
					rcancel()
				}()
				n, err := db.Query("r").On("master").CountContext(rctx)
				<-done
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("racing cancel %d: unexpected error %v", i, err)
				}
				if err == nil && n != want {
					t.Fatalf("racing cancel %d: complete count %d, want %d", i, n, want)
				}
			}

			// The pool must be fully reusable after all of the above.
			n, err := db.Query("r").On("master").Count()
			if err != nil || n != want {
				t.Fatalf("post-cancel scan: n=%d err=%v, want %d", n, err, want)
			}

			// No scan goroutine may outlive its scan: the pool has no
			// persistent workers, so the count settles back to where the
			// test started (small tolerance for lazy runtime goroutines).
			if got := settledGoroutines(before+3, 5*time.Second); got > before+3 {
				t.Fatalf("goroutines leaked: %d before, %d after settling", before, got)
			}
		})
	}
}

// TestParallelScanDeadline covers the other cancellation source: a
// deadline expiring mid-scan surfaces context.DeadlineExceeded.
func TestParallelScanDeadline(t *testing.T) {
	db := buildPruningDB(t, "hybrid", decibel.WithScanWorkers(4))
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure expiry
	_, err := db.Query("r").On("master").CountContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err=%v, want DeadlineExceeded", err)
	}
	if _, err := db.Query("r").On("master").Count(); err != nil {
		t.Fatalf("pool unusable after deadline: %v", err)
	}
}
