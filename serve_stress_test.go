package decibel_test

// Concurrent-serving stress: 32+ clients of mixed read/commit traffic
// against one served database, run under -race by CI's concurrency
// job. Every commit rewrites the whole key set with one generation
// number, so snapshot isolation is directly observable: any read that
// ever returns two generations in one response saw a torn snapshot.
// Readers also check the pinned commit seq never runs backwards and
// that re-reading a captured commit ID returns its original
// generation, while canceler clients abort requests mid-flight to
// prove disconnects are not server errors.

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decibel"
	"decibel/client"
)

func expvarInt(t *testing.T, name string) int64 {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	n, err := strconv.ParseInt(v.String(), 10, 64)
	if err != nil {
		t.Fatalf("expvar %q = %q: %v", name, v.String(), err)
	}
	return n
}

func TestConcurrentServing(t *testing.T) {
	runConcurrentServing(t)
}

// TestConcurrentServingParallelScans is the same stress run with the
// parallel scan executor forced on: every served read fans its frozen
// segments out on the scan pool while writers commit, so snapshot
// isolation and seq monotonicity are asserted against parallel reads.
func TestConcurrentServingParallelScans(t *testing.T) {
	runConcurrentServing(t, decibel.WithScanWorkers(4))
}

// TestConcurrentServingAutoCompaction is the same stress run with the
// compactor ticking aggressively in the background: segment merges,
// tombstone GC and page compression retire segment files while the 32
// clients read and write, so snapshot isolation and the reader-pinning
// retire protocol are asserted against concurrent compaction (CI runs
// this under -race).
func TestConcurrentServingAutoCompaction(t *testing.T) {
	runConcurrentServing(t,
		decibel.WithCompaction("auto"),
		decibel.WithCompactionInterval(5*time.Millisecond),
		decibel.WithCompactionThresholds(2, 1<<20))
}

func runConcurrentServing(t *testing.T, opts ...decibel.Option) {
	const (
		keys       = 48
		writers    = 8
		readers    = 22
		cancelers  = 2 // writers+readers+cancelers = 32 concurrent clients
		commitsPer = 12
	)
	db, err := decibel.Open(t.TempDir(), append([]decibel.Option{decibel.WithEngine("hybrid")}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int64("gen").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(decibel.NewServer(db).Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	genOps := func(gen int64) []client.Op {
		ops := make([]client.Op, keys)
		for k := range ops {
			ops[k] = client.Op{Op: "insert", Table: "r", Values: map[string]any{"id": k, "gen": gen}}
		}
		return ops
	}
	// Seed generation 0 so every snapshot has the full key set.
	if _, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: genOps(0)}); err != nil {
		t.Fatal(err)
	}

	errsBefore := expvarInt(t, "decibel.server.errors")
	var (
		genCtr      atomic.Int64
		writersLeft atomic.Int64
		reads       atomic.Int64
		wg          sync.WaitGroup
		mu          sync.Mutex
		failures    []string
		failf       = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	)
	writersLeft.Store(writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer writersLeft.Add(-1)
			for i := 0; i < commitsPer; i++ {
				gen := genCtr.Add(1)
				if _, err := c.Commit(ctx, client.CommitRequest{Branch: "master", Ops: genOps(gen)}); err != nil {
					failf("commit gen %d: %v", gen, err)
					return
				}
			}
		}()
	}

	// rowGen extracts the one generation a snapshot read must contain.
	rowGen := func(resp *client.QueryResponse) (int64, bool) {
		if len(resp.Rows) != keys {
			return 0, false
		}
		gen, first := int64(-1), true
		for _, row := range resp.Rows {
			n, ok := row["gen"].(json.Number)
			if !ok {
				return 0, false
			}
			g, err := n.Int64()
			if err != nil {
				return 0, false
			}
			if first {
				gen, first = g, false
			} else if g != gen {
				return 0, false
			}
		}
		return gen, true
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				lastSeq   = -1
				pinCommit uint64
				pinGen    int64
			)
			for writersLeft.Load() > 0 {
				resp, err := c.Query(ctx, client.QueryRequest{Table: "r", Branches: []string{"master"}})
				if err != nil {
					failf("read: %v", err)
					return
				}
				gen, ok := rowGen(resp)
				if !ok {
					failf("torn snapshot: %d rows, mixed generations (%v...)", len(resp.Rows), resp.Rows[:min(3, len(resp.Rows))])
					return
				}
				if resp.Commit == 0 {
					failf("head read came back unpinned")
					return
				}
				if resp.Seq < lastSeq {
					failf("commit seq ran backwards: %d after %d", resp.Seq, lastSeq)
					return
				}
				lastSeq = resp.Seq
				if pinCommit == 0 {
					pinCommit, pinGen = resp.Commit, gen
				} else {
					// A captured snapshot re-reads identically forever.
					pr, err := c.Query(ctx, client.QueryRequest{Table: "r", Branches: []string{"master"}, AtCommit: pinCommit})
					if err != nil {
						failf("pinned re-read: %v", err)
						return
					}
					if g, ok := rowGen(pr); !ok || g != pinGen {
						failf("pinned commit %d re-read gen %d (ok=%v), want %d", pinCommit, g, ok, pinGen)
						return
					}
				}
				reads.Add(1)
			}
		}()
	}

	for i := 0; i < cancelers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for writersLeft.Load() > 0 {
				cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
				_, _ = c.Query(cctx, client.QueryRequest{Table: "r", Branches: []string{"master"}})
				cancel()
			}
		}()
	}

	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d failures, first: %s", len(failures), failures[0])
	}
	if got := reads.Load(); got == 0 {
		t.Fatal("readers never completed a read while commits landed")
	}
	if errsAfter := expvarInt(t, "decibel.server.errors"); errsAfter != errsBefore {
		t.Fatalf("server error counter moved by %d during the stress run", errsAfter-errsBefore)
	}

	// The final head reflects the last serialized commit: all keys on
	// one generation, total commits == writers*commitsPer + seed.
	resp, err := c.Query(ctx, client.QueryRequest{Table: "r", Branches: []string{"master"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rowGen(resp); !ok {
		t.Fatalf("final head is torn: %v", resp.Rows)
	}
	if !c.Healthy(ctx) {
		t.Fatal("server unhealthy after the stress run")
	}
}
