// Package gitstore is the public face of the git-backed baseline the
// paper compares against (Section 5.5, Tables 6 and 7): a versioned
// table stored as git-style loose objects and delta-compressed packs,
// in one-file-per-table or file-per-tuple layouts, binary or CSV
// encoded.
package gitstore

import (
	"decibel"
	igit "decibel/internal/gitstore"
)

// Layouts: how a table maps onto files in the repository.
type Layout = igit.Layout

const (
	OneFile      = igit.OneFile      // the whole table as one blob
	FilePerTuple = igit.FilePerTuple // one blob per tuple
)

// Formats: how records are encoded inside blobs.
type Format = igit.Format

const (
	Binary = igit.Binary // the record codec's binary layout
	CSV    = igit.CSV    // comma-separated decimal columns
)

// Table is a versioned relation stored in a git-style repository.
type Table = igit.Table

// Repo is the underlying object store (loose objects, packs, refs).
type Repo = igit.Repo

// Hash identifies an object (SHA-1, as in git).
type Hash = igit.Hash

// Commit is one commit object.
type Commit = igit.Commit

// NewTable creates (or reopens) a git-backed table at dir.
func NewTable(dir string, schema *decibel.Schema, layout Layout, format Format) (*Table, error) {
	return igit.NewTable(dir, schema, layout, format)
}

// InitRepo creates (or reopens) a bare object store at dir.
func InitRepo(dir string) (*Repo, error) { return igit.InitRepo(dir) }
