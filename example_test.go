package decibel_test

// Runnable godoc examples: a usage tour of the name-based facade that
// pkg.go.dev renders on the package page. Each example is executed by
// `go test -run Example` in CI, so the documented snippets can never
// drift from the real API.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"decibel"
)

// Example opens a dataset, initializes it with one table, and commits
// records to master through the name-based write API.
func Example() {
	dir, err := os.MkdirTemp("", "decibel-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Float64("price").Bytes("sku", 12).MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("initial catalog"); err != nil {
		log.Fatal(err)
	}

	commit, err := db.Commit("master", func(tx *decibel.Tx) error {
		tx.SetMessage("first product")
		rec := decibel.NewRecord(schema)
		rec.SetPK(1)
		rec.SetFloat64(1, 9.99)
		if err := rec.SetBytes(2, []byte("SKU-0001")); err != nil {
			return err
		}
		return tx.Insert("products", rec)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %q\n", commit.Message)

	rows, scanErr := db.Rows("products", "master")
	for rec := range rows {
		fmt.Printf("pk=%d price=%.2f sku=%s\n", rec.PK(), rec.GetFloat64(1), rec.GetBytes(2))
	}
	if err := scanErr(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// committed "first product"
	// pk=1 price=9.99 sku=SKU-0001
}

// ExampleDB_Commit shows transaction semantics: a callback error aborts
// the commit and none of its writes become visible.
func ExampleDB_Commit() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := decibel.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Int64("qty").MustBuild()
	if _, err := db.CreateTable("inventory", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		log.Fatal(err)
	}

	errOutOfStock := errors.New("out of stock")
	_, err = db.Commit("master", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(7)
		rec.Set(1, 0)
		if err := tx.Insert("inventory", rec); err != nil {
			return err
		}
		return errOutOfStock // abort: nothing is committed
	})
	fmt.Println("commit error:", err)
	fmt.Println("commits in graph:", db.Graph().NumCommits())
	// Output:
	// commit error: out of stock
	// commits in graph: 1
}

// ExampleDB_Diff branches a dataset, changes both sides, and walks the
// symmetric difference between the two branch heads.
func ExampleDB_Diff() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := decibel.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		log.Fatal(err)
	}
	put := func(branch string, pk, v int64) {
		if _, err := db.Commit(branch, func(tx *decibel.Tx) error {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, v)
			return tx.Insert("r", rec)
		}); err != nil {
			log.Fatal(err)
		}
	}
	put("master", 1, 10)
	if _, err := db.Branch("master", "dev"); err != nil {
		log.Fatal(err)
	}
	put("dev", 1, 11) // changed on dev
	put("dev", 2, 20) // new on dev

	diff, diffErr := db.Diff("r", "dev", "master")
	for rec, inDev := range diff {
		side := "master"
		if inDev {
			side = "dev"
		}
		fmt.Printf("only in %s: pk=%d v=%d\n", side, rec.PK(), rec.Get(1))
	}
	if err := diffErr(); err != nil {
		log.Fatal(err)
	}
	// Unordered output:
	// only in dev: pk=1 v=11
	// only in dev: pk=2 v=20
	// only in master: pk=1 v=10
}

// ExampleDB_RowsContext cancels a scan mid-iteration: the iterator
// stops within one record and the trailing error accessor reports
// ctx.Err().
func ExampleDB_RowsContext() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := decibel.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		for pk := int64(1); pk <= 100_000; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			if err := tx.Insert("r", rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	rows, scanErr := db.RowsContext(ctx, "r", "master")
	for range rows {
		seen++
		if seen == 3 {
			cancel() // a deadline or user abort works the same way
		}
	}
	fmt.Println("records seen:", seen)
	fmt.Println("scan ended with context.Canceled:", errors.Is(scanErr(), context.Canceled))
	// Output:
	// records seen: 3
	// scan ended with context.Canceled: true
}

// ExampleDB_Query runs the paper's four query shapes through the
// fluent builder: a predicated single-version scan with projection, a
// positive diff, a version join, and a HEAD() scan over every branch
// annotated with branch membership — all by name, all in one engine
// pass per query.
func ExampleDB_Query() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := decibel.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Float64("price").Bytes("sku", 12).MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		log.Fatal(err)
	}
	// Batch-load master, then branch and discount one product on dev.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		var recs []*decibel.Record
		for pk, price := range map[int64]float64{1: 9.99, 2: 24.50, 3: 3.75} {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.SetFloat64(1, price)
			if err := rec.SetBytes(2, []byte(fmt.Sprintf("SKU-%04d", pk))); err != nil {
				return err
			}
			recs = append(recs, rec)
		}
		return tx.InsertBatch("products", recs)
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(2)
		rec.SetFloat64(1, 19.99) // discounted on dev
		if err := rec.SetBytes(2, []byte("SKU-0002")); err != nil {
			return err
		}
		return tx.Insert("products", rec)
	}); err != nil {
		log.Fatal(err)
	}

	// Q1: single-version scan with a typed predicate and projection.
	rows, qErr := db.Query("products").
		On("master").
		Where(decibel.Col("price").Lt(10.0)).
		Select("sku").
		Rows()
	for rec := range rows {
		fmt.Printf("cheap on master: pk=%d sku=%s\n", rec.PK(), rec.GetBytes(1))
	}
	if err := qErr(); err != nil {
		log.Fatal(err)
	}

	// Q2: records at dev's head that master does not have.
	diff, dErr := db.Query("products").Diff("dev", "master")
	for rec := range diff {
		fmt.Printf("only on dev: pk=%d price=%.2f\n", rec.PK(), rec.GetFloat64(1))
	}
	if err := dErr(); err != nil {
		log.Fatal(err)
	}

	// Q3: join the two versions of the discounted product.
	pairs, jErr := db.Query("products").
		Where(decibel.Col("id").Eq(2)).
		Join("master", "dev")
	for left, right := range pairs {
		fmt.Printf("pk=%d master=%.2f dev=%.2f\n", left.PK(), left.GetFloat64(1), right.GetFloat64(1))
	}
	if err := jErr(); err != nil {
		log.Fatal(err)
	}

	// Q4 + aggregate: how many distinct records are live across all
	// branch heads?
	n, err := db.Query("products").Heads().Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("records across heads:", n)
	// Unordered output:
	// cheap on master: pk=1 sku=SKU-0001
	// cheap on master: pk=3 sku=SKU-0003
	// only on dev: pk=2 price=19.99
	// pk=2 master=24.50 dev=19.99
	// records across heads: 4
}

// ExampleTx_AddColumn evolves a table's schema on one branch: the new
// column gets a default, rows stored before the change are never
// rewritten (reads fill the default), historical versions keep their
// old shape, and other branches stay unchanged until they merge the
// evolving branch.
func ExampleTx_AddColumn() {
	dir, err := os.MkdirTemp("", "decibel-addcolumn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := decibel.Open(dir, decibel.WithEngine("hybrid"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := decibel.NewSchema().Int64("id").Int32("qty").MustBuild()
	if _, err := db.CreateTable("products", schema); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Init("catalog"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		rec := decibel.NewRecord(schema)
		rec.SetPK(1)
		rec.Set(1, 10)
		return tx.Insert("products", rec)
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Branch("master", "dev"); err != nil {
		log.Fatal(err)
	}

	// Add a price column on dev, with a default for existing rows. The
	// change takes effect at commit; nothing on disk is rewritten.
	if _, err := db.Commit("dev", func(tx *decibel.Tx) error {
		return tx.AddColumn("products", decibel.Float64Column("price"), decibel.Default(9.5))
	}); err != nil {
		log.Fatal(err)
	}

	// dev sees the column (old rows show the default) ...
	rows, rowsErr := db.Query("products").On("dev").Select("qty", "price").Rows()
	for rec := range rows {
		s := rec.Schema()
		fmt.Printf("dev: pk=%d qty=%d price=%.2f\n",
			rec.PK(), rec.Get(s.ColumnIndex("qty")), rec.GetFloat64(s.ColumnIndex("price")))
	}
	if err := rowsErr(); err != nil {
		log.Fatal(err)
	}

	// ... while a query At a version from before the change reports
	// that the column did not exist yet.
	_, err = db.Query("products").On("master").At(1).Select("price").Count()
	fmt.Println("price at master@1:", errors.Is(err, decibel.ErrColumnNotYetAdded))

	// Merging dev carries the schema change to master.
	if _, _, err := db.Merge("master", "dev"); err != nil {
		log.Fatal(err)
	}
	n, err := db.Query("products").On("master").Where(decibel.Col("price").Ge(9.5)).Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("master rows at the default price:", n)

	// Output:
	// dev: pk=1 qty=10 price=9.50
	// price at master@1: true
	// master rows at the default price: 1
}

// exampleJoinDB loads a two-table orders/users dataset the join and
// grouping examples share.
func exampleJoinDB(dir string) (*decibel.DB, error) {
	db, err := decibel.Open(dir)
	if err != nil {
		return nil, err
	}
	users := decibel.NewSchema().Int64("id").Int64("region").Bytes("name", 8).MustBuild()
	orders := decibel.NewSchema().Int64("id").Int64("user_id").Int64("qty").Float64("price").MustBuild()
	if _, err := db.CreateTable("users", users); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("orders", orders); err != nil {
		return nil, err
	}
	if _, _, err := db.Init("init"); err != nil {
		return nil, err
	}
	_, err = db.Commit("master", func(tx *decibel.Tx) error {
		for _, u := range []struct {
			pk, region int64
			name       string
		}{{1, 1, "amy"}, {2, 2, "bo"}} {
			rec := decibel.NewRecord(users)
			rec.SetPK(u.pk)
			rec.Set(1, u.region)
			if err := rec.SetBytes(2, []byte(u.name)); err != nil {
				return err
			}
			if err := tx.Insert("users", rec); err != nil {
				return err
			}
		}
		for _, o := range []struct {
			pk, user, qty int64
			price         float64
		}{{10, 1, 3, 5.00}, {11, 2, 1, 12.50}, {12, 1, 2, 8.25}} {
			rec := decibel.NewRecord(orders)
			rec.SetPK(o.pk)
			rec.Set(1, o.user)
			rec.Set(2, o.qty)
			rec.SetFloat64(3, o.price)
			if err := tx.Insert("orders", rec); err != nil {
				return err
			}
		}
		return nil
	})
	return db, err
}

// ExampleDB_Query_join composes an equi-join across two tables with
// JoinOn: each leg is its own query, and tuples emit one record per
// relation in ascending composite primary-key order.
func ExampleDB_Query_join() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := exampleJoinDB(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tuples, tErr := db.Query("orders").
		On("master").
		Where(decibel.Col("qty").Ge(2)).
		JoinOn(db.Query("users"), decibel.On("user_id", "id")).
		Tuples()
	for tup := range tuples {
		order, user := tup[0], tup[1]
		fmt.Printf("order %d x%d -> %s\n", order.PK(), order.Get(2), user.GetBytes(2))
	}
	if err := tErr(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// order 10 x3 -> amy
	// order 12 x2 -> amy
}

// ExampleDB_Query_groupBy folds streaming per-group aggregates with
// GroupBy and the Count/Sum/Min/Max/Avg constructors; groups emit in
// first-arrival order. Group columns may come from any joined relation.
func ExampleDB_Query_groupBy() {
	dir, _ := os.MkdirTemp("", "decibel-example-*")
	defer os.RemoveAll(dir)
	db, err := exampleJoinDB(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	groups, gErr := db.Query("orders").
		On("master").
		GroupBy("user_id").
		Groups(decibel.Count(), decibel.Sum("qty"), decibel.Avg("price"))
	for g := range groups {
		fmt.Printf("user %v: %v orders, %v items, avg %.3f\n",
			g.Key[0], g.Aggs[0], g.Aggs[1], g.Aggs[2])
	}
	if err := gErr(); err != nil {
		log.Fatal(err)
	}

	// Group a join by a column of the joined relation.
	joined, jErr := db.Query("orders").
		On("master").
		JoinOn(db.Query("users"), decibel.On("user_id", "id")).
		GroupBy("region").
		Groups(decibel.Sum("qty"))
	for g := range joined {
		fmt.Printf("region %v: %v items\n", g.Key[0], g.Aggs[0])
	}
	if err := jErr(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// user 1: 2 orders, 5 items, avg 6.625
	// user 2: 1 orders, 1 items, avg 12.500
	// region 1: 5 items
	// region 2: 1 items
}
