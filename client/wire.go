// Package client is the thin Go client for a decibel serve endpoint:
// the wire types of the server's HTTP/JSON protocol plus a Client that
// speaks it over net/http. The protocol mirrors the facade — the query
// builder's shapes, transactional commits, branch/merge and schema
// alters — so anything expressible against decibel.DB is expressible
// over the wire.
package client

// Expr is the wire form of a typed predicate: exactly one of Col
// (a comparison leaf), And, Or or Not is set.
//
//	{"col": "price", "op": "lt", "val": 9.5}
//	{"and": [{"col": "qty", "op": "ge", "val": 3}, {"not": {...}}]}
//
// Ops: eq, ne, lt, le, gt, ge, prefix (byte-string prefix match).
// Values follow the column type: JSON numbers for integer and float
// columns, strings for byte-string columns.
type Expr struct {
	Col string `json:"col,omitempty"`
	Op  string `json:"op,omitempty"`
	Val any    `json:"val,omitempty"`

	And []Expr `json:"and,omitempty"`
	Or  []Expr `json:"or,omitempty"`
	Not *Expr  `json:"not,omitempty"`
}

// QueryRequest is POST /v1/query: one query-builder invocation. Shape
// selection follows the builder's rules — one branch is a
// single-version scan, several (or Heads) a multi-branch scan, Diff a
// positive diff between two heads; Agg folds instead of listing rows.
type QueryRequest struct {
	Table    string   `json:"table"`
	Branches []string `json:"branches,omitempty"` // On(...)
	Heads    bool     `json:"heads,omitempty"`    // Heads()
	At       *int     `json:"at,omitempty"`       // At(n): n-th commit on the branch
	AtCommit uint64   `json:"atCommit,omitempty"` // AtCommit(id): pin an exact snapshot
	Diff     []string `json:"diff,omitempty"`     // Diff(a, b): exactly two branches

	Where   *Expr    `json:"where,omitempty"`
	Select  []string `json:"select,omitempty"`
	OrderBy string   `json:"orderBy,omitempty"`
	Desc    bool     `json:"desc,omitempty"`
	Limit   int      `json:"limit,omitempty"`

	Agg    string `json:"agg,omitempty"` // count | sum | min | max | avg
	AggCol string `json:"aggCol,omitempty"`

	// Join composes N-way equi-joins (the builder's JoinOn): each
	// clause adds one relation joined to the ones before it. The root
	// table is relation 0; tuples come back in the Tuples field, one
	// row per relation in composition order. Join excludes diff/heads
	// and orderBy/limit.
	Join []JoinClause `json:"join,omitempty"`

	// DeclaredOrder pins join execution to the composed relation order
	// instead of the greedy zone-map ordering (the builder's
	// DeclaredJoinOrder). Results are identical either way.
	DeclaredOrder bool `json:"declaredOrder,omitempty"`

	// GroupBy makes the query a grouped aggregation over the named
	// columns (the builder's GroupBy): groups come back in the Groups
	// field in first-arrival order, folding Aggs per group. Excludes
	// the scalar Agg and orderBy/limit.
	GroupBy []string    `json:"groupBy,omitempty"`
	Aggs    []AggClause `json:"aggs,omitempty"`
}

// JoinClause is one joined relation (the builder's JoinOn leg): its
// table, the branch to scan (empty inherits the root query's branch),
// the equi-join key On = [leftCol, rightCol] — leftCol names a column
// of the relations composed before this one, rightCol a column of this
// clause's table — plus the leg's own predicate and projection, pushed
// into the leg's scan.
type JoinClause struct {
	Table  string    `json:"table"`
	Branch string    `json:"branch,omitempty"`
	On     [2]string `json:"on"`
	Where  *Expr     `json:"where,omitempty"`
	Select []string  `json:"select,omitempty"`
}

// AggClause is one per-group aggregate for a GroupBy query:
// count | sum | min | max | avg, with Col naming the folded column
// (unused for count).
type AggClause struct {
	Agg string `json:"agg"`
	Col string `json:"col,omitempty"`
}

// GroupWire is one group of a GroupBy query: the group-by column
// values in GroupBy order (numbers, or strings for byte-string
// columns) and one float64 per requested aggregate, in Aggs order.
type GroupWire struct {
	Key  []any     `json:"key"`
	Aggs []float64 `json:"aggs,omitempty"`
}

// Row is one emitted record, keyed by column name. Integer columns
// arrive as JSON numbers (decode with json.Number or into int64),
// float columns as numbers, byte-string columns as strings. Annotated
// multi-branch rows carry the live branch names under "_branches".
type Row map[string]any

// QueryResponse answers /v1/query. For single-branch reads Commit/Seq
// identify the snapshot the rows were read at: the server pins the
// branch head it resolved at request start, so re-issuing the query
// with AtCommit=Commit re-reads the identical version no matter how
// many commits landed since.
type QueryResponse struct {
	Commit uint64  `json:"commit,omitempty"` // pinned commit ID (single-branch reads)
	Seq    int     `json:"seq,omitempty"`    // its per-branch sequence number
	Branch string  `json:"branch,omitempty"` // the branch it is (or was) the head of
	Rows   []Row   `json:"rows,omitempty"`
	Agg    float64 `json:"agg,omitempty"` // aggregate result when Agg was set

	// Tuples answers join queries: one entry per joined tuple, itself
	// one Row per relation in composition order (index 0 = the root
	// table), emitted in ascending composite primary-key order.
	Tuples [][]Row `json:"tuples,omitempty"`

	// Groups answers groupBy queries, in first-arrival order.
	Groups []GroupWire `json:"groups,omitempty"`

	Count int `json:"count"` // rows/tuples/groups emitted (== Agg for count)
}

// Op is one write inside a commit: op "insert" upserts Values as a
// record (column name -> value, every head-schema column present
// except omitted ones defaulting to zero values is an error — the
// server validates), op "delete" removes PK.
type Op struct {
	Op     string         `json:"op"` // insert | delete
	Table  string         `json:"table"`
	Values map[string]any `json:"values,omitempty"` // insert
	PK     int64          `json:"pk,omitempty"`     // delete
}

// CommitRequest is POST /v1/commit: one transaction against a branch
// head — all ops commit atomically or none do, exactly the facade's
// Commit(branch, fn) semantics (the branch's exclusive lock is held
// for the span of the ops).
type CommitRequest struct {
	Branch  string `json:"branch"`
	Message string `json:"message,omitempty"`
	Ops     []Op   `json:"ops"`
}

// CommitResponse reports the commit that the transaction produced.
type CommitResponse struct {
	Commit uint64 `json:"commit"`
	Seq    int    `json:"seq"`
}

// BranchRequest is POST /v1/branch: create branch Name from the
// current head of From.
type BranchRequest struct {
	From string `json:"from"`
	Name string `json:"name"`
}

// BranchResponse describes one branch (also the element of
// /v1/branches listings).
type BranchResponse struct {
	Name   string `json:"name"`
	Head   uint64 `json:"head"`
	Commit int    `json:"commits"` // commits made on the branch
}

// MergeRequest is POST /v1/merge: merge From's head into Into.
// Kind "threeway" (default) or "twoway"; Precedence "into" (default)
// or "from" selects which side wins conflicting fields.
type MergeRequest struct {
	Into       string `json:"into"`
	From       string `json:"from"`
	Kind       string `json:"kind,omitempty"`
	Precedence string `json:"precedence,omitempty"`
	Message    string `json:"message,omitempty"`
}

// MergeResponse reports the merge commit and the paper's merge
// statistics.
type MergeResponse struct {
	Commit    uint64 `json:"commit"`
	Merged    int    `json:"merged"`
	Conflicts int    `json:"conflicts"`
}

// ColumnDef describes a column for /v1/alter adds and /v1/tables
// listings. Type: int32 | int64 | float64 | bytes (Cap required for
// bytes). Default is the value pre-existing rows read back.
type ColumnDef struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Cap     int    `json:"cap,omitempty"`
	Default any    `json:"default,omitempty"`
}

// AlterRequest is POST /v1/alter: one schema-change transaction on a
// branch — exactly one of Add or Drop.
type AlterRequest struct {
	Branch string     `json:"branch"`
	Table  string     `json:"table"`
	Add    *ColumnDef `json:"add,omitempty"`
	Drop   string     `json:"drop,omitempty"`
}

// TableResponse describes one table (the element of /v1/tables).
type TableResponse struct {
	Name    string      `json:"name"`
	Columns []ColumnDef `json:"columns"`
}

// ErrorResponse is every non-2xx body: a message and the sentinel the
// server mapped it from (e.g. "no_such_branch"), stable for clients
// to switch on.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
