package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the decibel serve HTTP/JSON protocol. The zero value
// is not usable; construct with New. A Client is safe for concurrent
// use by multiple goroutines (it shares one http.Client, so it also
// shares its connection pool).
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request
// (timeouts, transports, connection limits).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8527").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Error is a non-2xx server response surfaced as a Go error.
type Error struct {
	Status  int    // HTTP status code
	Code    string // stable sentinel code, e.g. "no_such_branch"
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("decibel server: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// post issues one JSON round trip; out may be nil to discard the body.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(msg, &e) != nil || e.Error == "" {
			e.Error = strings.TrimSpace(string(msg))
		}
		return &Error{Status: resp.StatusCode, Code: e.Code, Message: e.Error}
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber() // keep int64 column values exact
	return dec.Decode(out)
}

// Query runs one query-builder invocation server-side.
func (c *Client) Query(ctx context.Context, q QueryRequest) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.post(ctx, "/v1/query", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Commit applies one transaction — all ops atomically, or none.
func (c *Client) Commit(ctx context.Context, req CommitRequest) (*CommitResponse, error) {
	var out CommitResponse
	if err := c.post(ctx, "/v1/commit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Branch creates a branch from the current head of another.
func (c *Client) Branch(ctx context.Context, from, name string) (*BranchResponse, error) {
	var out BranchResponse
	if err := c.post(ctx, "/v1/branch", BranchRequest{From: from, Name: name}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Merge merges one branch head into another.
func (c *Client) Merge(ctx context.Context, req MergeRequest) (*MergeResponse, error) {
	var out MergeResponse
	if err := c.post(ctx, "/v1/merge", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Alter commits one schema change (add or drop a column) on a branch.
func (c *Client) Alter(ctx context.Context, req AlterRequest) (*CommitResponse, error) {
	var out CommitResponse
	if err := c.post(ctx, "/v1/alter", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tables lists the dataset's tables with their current schemas.
func (c *Client) Tables(ctx context.Context) ([]TableResponse, error) {
	var out []TableResponse
	if err := c.get(ctx, "/v1/tables", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Branches lists the dataset's branches.
func (c *Client) Branches(ctx context.Context) ([]BranchResponse, error) {
	var out []BranchResponse
	if err := c.get(ctx, "/v1/branches", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the server answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.get(ctx, "/healthz", nil) == nil
}

// Vars fetches /debug/vars (the server's expvar counters) decoded
// into a map.
func (c *Client) Vars(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.get(ctx, "/debug/vars", &out); err != nil {
		return nil, err
	}
	return out, nil
}
