package decibel_test

// Lineage-cache equivalence: the version-first engine's cached
// resolution tiers (exact-position live maps, incremental delta
// resolution, scan-plan cache, lineage-delta diffs) are pure
// optimizations — a cached engine must emit byte-identical streams to
// an engine with the cache forced off (WithLineageCache(-1), the full
// lineage-walk baseline), for every query shape, predicate, and both
// executor paths. The test also asserts the cache actually engaged
// (the hits counter moved), so a silently bypassed cache cannot pass.

import (
	"fmt"
	"math/rand"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/vf"
)

func TestVFCacheEquivalence(t *testing.T) {
	cached := buildPruningDB(t, "vf")
	uncached := buildPruningDB(t, "vf", decibel.WithLineageCache(-1))
	hitsBefore, _, _, _ := vf.CacheCounters()

	type shaped struct {
		plan  iquery.Plan
		shape string
	}
	shapes := func(where iquery.Expr, noParallel bool) []shaped {
		mkPlan := func(branches []string, atSeq int) iquery.Plan {
			return iquery.Plan{Table: "r", Branches: branches, AtSeq: atSeq,
				Where: where, NoParallel: noParallel}
		}
		return []shaped{
			{mkPlan([]string{"master"}, -1), "scan"},
			{mkPlan([]string{"b1"}, -1), "scan"},
			{mkPlan([]string{"b2"}, -1), "scan"},
			{mkPlan([]string{"master"}, 0), "scan"}, // historical commit read
			{mkPlan([]string{"master", "b1"}, -1), "multi"},
			{mkPlan([]string{"master", "b2", "b1"}, -1), "multi"},
			{mkPlan([]string{"master", "b1"}, -1), "diff"},
			{mkPlan([]string{"b2", "master"}, -1), "diff"},
			{mkPlan([]string{"master", "b1"}, -1), "diff-postfilter"},
		}
	}
	check := func(t *testing.T, plan iquery.Plan, shape, label string) {
		t.Helper()
		got, gotErr := runShape(cached, plan, shape)
		want, wantErr := runShape(uncached, plan, shape)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: cached err=%v uncached err=%v", label, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s: error mismatch: %v vs %v", label, gotErr, wantErr)
			}
			return
		}
		if len(got) != len(want) {
			t.Fatalf("%s: cached %d rows, uncached %d rows", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d: cached %q uncached %q", label, i, got[i], want[i])
			}
		}
	}

	fixed := []iquery.Expr{
		iquery.Col("v").Ge(0), // match-all: full live sets compared
		iquery.Col("price").Lt(7.5),
		iquery.Col("sku").HasPrefix("c"),
		iquery.Col("v").Ge(120).And(iquery.Col("sku").HasPrefix("b")),
	}
	rng := rand.New(rand.NewSource(0xcac4ed))
	for _, noParallel := range []bool{false, true} {
		for i, where := range fixed {
			for j, sh := range shapes(where, noParallel) {
				check(t, sh.plan, sh.shape,
					fmt.Sprintf("fixed[%d] shape[%d] noParallel=%v", i, j, noParallel))
			}
		}
		for i := 0; i < 40; i++ {
			where := randExpr(rng, 2)
			for j, sh := range shapes(where, noParallel) {
				check(t, sh.plan, sh.shape,
					fmt.Sprintf("rand[%d] shape[%d] noParallel=%v", i, j, noParallel))
			}
		}
	}

	// Writes between reads: the cache must track new commits (fresh
	// cuts resolve incrementally from cached bases) without going
	// stale. Mutate both databases identically and re-compare.
	for round := 0; round < 3; round++ {
		for _, db := range []*decibel.DB{cached, uncached} {
			if _, err := db.Commit("master", func(tx *decibel.Tx) error {
				schema, err := db.TableByName("r")
				if err != nil {
					return err
				}
				for pk := int64(200 + round*10); pk < int64(205+round*10); pk++ {
					rec := decibel.NewRecord(schema.Schema())
					rec.SetPK(pk)
					rec.Set(1, pk*3)
					if err := rec.SetBytes(2, []byte(fmt.Sprintf("z%03d", pk))); err != nil {
						return err
					}
					if err := tx.Insert("r", rec); err != nil {
						return err
					}
				}
				return tx.Delete("r", int64(20+round))
			}); err != nil {
				t.Fatal(err)
			}
		}
		for j, sh := range shapes(iquery.Col("v").Ge(0), false) {
			check(t, sh.plan, sh.shape, fmt.Sprintf("post-write[%d] shape[%d]", round, j))
		}
	}

	if hitsAfter, _, _, _ := vf.CacheCounters(); hitsAfter == hitsBefore {
		t.Fatalf("lineage cache hits did not move (%d): the cache is not engaging", hitsBefore)
	}
}
