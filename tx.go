package decibel

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"decibel/internal/core"
)

// Tx is the handle a name-based Commit hands to its callback: a
// single writer positioned at the target branch head, holding the
// branch's exclusive lock under two-phase locking until the commit (or
// the callback's error) ends the transaction. All Tx operations
// address tables by name.
//
// A Tx is only valid inside its callback; retaining it past the
// callback's return yields ErrSessionClosed.
type Tx struct {
	ctx     context.Context
	session *core.Session
	branch  string
	message string
	touched map[string]map[int64]struct{} // table -> pks written, for rollback
}

// note records a write for rollback should the callback fail.
func (tx *Tx) note(table string, pk int64) {
	if tx.touched == nil {
		tx.touched = make(map[string]map[int64]struct{})
	}
	pks := tx.touched[table]
	if pks == nil {
		pks = make(map[int64]struct{})
		tx.touched[table] = pks
	}
	pks[pk] = struct{}{}
}

// rollback restores every key the transaction wrote to its last
// committed state. It runs under context.WithoutCancel so an abort
// caused by cancellation still cleans up.
func (tx *Tx) rollback() error {
	ctx := context.WithoutCancel(tx.ctx)
	for table, pks := range tx.touched {
		keys := make([]int64, 0, len(pks))
		for pk := range pks {
			keys = append(keys, pk)
		}
		if err := tx.session.Revert(ctx, table, keys); err != nil {
			return err
		}
	}
	return nil
}

// Insert upserts a record into the transaction's branch head.
func (tx *Tx) Insert(table string, rec *Record) error {
	if err := tx.session.InsertContext(tx.ctx, table, rec); err != nil {
		return err
	}
	tx.note(table, rec.PK())
	return nil
}

// InsertBatch upserts a batch of records into the transaction's branch
// head as one engine call, amortizing the per-record lock acquisition
// and validation of Insert — the fast path for bulk loads. On error a
// prefix of the batch may have been applied; like every Tx write it is
// rolled back if the transaction aborts.
func (tx *Tx) InsertBatch(table string, recs []*Record) error {
	// Note every key before writing: a batch that fails part-way has
	// applied an unknown prefix, and rollback must cover all of it
	// (reverting an untouched key merely restores its committed state).
	for _, rec := range recs {
		tx.note(table, rec.PK())
	}
	return tx.session.InsertBatchContext(tx.ctx, table, recs)
}

// Delete removes a primary key from the transaction's branch head.
// Deleting an absent key is a no-op.
func (tx *Tx) Delete(table string, pk int64) error {
	if err := tx.session.DeleteContext(tx.ctx, table, pk); err != nil {
		return err
	}
	tx.note(table, pk)
	return nil
}

// Scan reads the transaction's view of a table (the branch head,
// including the transaction's own uncommitted writes).
func (tx *Tx) Scan(table string, fn ScanFunc) error {
	return tx.session.ScanContext(tx.ctx, table, fn)
}

// Rows iterates the transaction's view of a table.
func (tx *Tx) Rows(table string) (iter.Seq[*Record], func() error) {
	var err error
	seq := func(yield func(*Record) bool) {
		err = tx.Scan(table, func(rec *Record) bool { return yield(rec) })
	}
	return seq, func() error { return err }
}

// ColumnDefault carries the default value of a column added by
// Tx.AddColumn; build one with Default.
type ColumnDefault struct{ v any }

// Default declares the value existing records show for a column added
// after they were stored: integers for Int32/Int64 columns, floats
// (or integers) for Float64, strings or []byte for Bytes. Omitting the
// default yields the column type's zero value.
func Default(v any) ColumnDefault { return ColumnDefault{v: v} }

// AddColumn evolves the named table's schema: from the commit this
// transaction produces, the table has the new column, appended after
// every existing one. Records stored before the change are never
// rewritten — reads fill the declared default — and reads of earlier
// commits (RowsAt, Query...At) keep the schema as of then, so a query
// At a version predating the column fails with ErrColumnNotYetAdded.
// Only the branch this transaction commits to (and branches that later
// merge it) see the new column; other branches keep their shape until
// they do, which is how branched datasets diverge structurally.
//
// The change applies atomically at commit: inserts inside the same
// transaction still write the old shape, and the column becomes
// writable from the next transaction on the branch. An aborted
// transaction discards it.
//
// Schema evolution forms one linear chain of versions per dataset: a
// branch may only commit a schema change if its head has adopted every
// earlier change (made them itself, or merged the branch that did).
// Committing a change on a branch that diverged from the newest schema
// fails with ErrSchemaChange — merge the evolving branch first.
func (tx *Tx) AddColumn(table string, col Column, def ...ColumnDefault) error {
	var v any
	if len(def) > 0 {
		v = def[0].v
	}
	return tx.session.AddColumn(table, col, v)
}

// DropColumn queues a logical drop of the named column: from the
// commit this transaction produces, the column disappears from the
// table's visible schema. Stored records keep its bytes and reads at
// earlier versions still see it; the name stays reserved. The primary
// key cannot be dropped.
func (tx *Tx) DropColumn(table, column string) error {
	return tx.session.DropColumn(table, column)
}

// Branch returns the name of the branch the transaction writes to.
func (tx *Tx) Branch() string { return tx.branch }

// Context returns the context the transaction runs under (the one
// given to CommitContext, or context.Background() for Commit).
func (tx *Tx) Context() context.Context { return tx.ctx }

// SetMessage sets the commit message recorded when the callback
// returns successfully; without it the commit message names the branch.
func (tx *Tx) SetMessage(message string) { tx.message = message }

// Commit runs fn as one transaction against the named branch's head
// and, if fn returns nil, commits the branch — making every write fn
// issued atomically visible as a new version whose *Commit is
// returned. The branch's exclusive lock is held for the span of the
// callback (strict two-phase locking), so concurrent Commits to the
// same branch serialize while Commits to different branches proceed in
// parallel.
//
// If fn returns an error, nothing is committed and the error is
// returned: every key fn wrote is restored to its last committed state
// before Commit returns, so an aborted transaction leaves no residue on
// the branch head. (Should that restoration itself fail, its error is
// joined to fn's; the head is then rolled back by the write-ahead log
// when the dataset is next opened.)
func (db *DB) Commit(branch string, fn func(*Tx) error) (*Commit, error) {
	return db.CommitContext(context.Background(), branch, fn)
}

// CommitContext is Commit bounded by a context: lock waits, the
// callback's Tx operations, and the final commit handoff all abort
// with ctx.Err() once ctx is canceled.
func (db *DB) CommitContext(ctx context.Context, branch string, fn func(*Tx) error) (*Commit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := db.NewSession()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// Take the branch's exclusive lock before reading its head so
	// concurrent Commits to the same branch serialize instead of the
	// loser failing ErrNotAtHead.
	if err := s.CheckoutForWrite(ctx, branch); err != nil {
		return nil, err
	}
	tx := &Tx{ctx: ctx, session: s, branch: branch, message: "commit on " + branch}
	if err := fn(tx); err != nil {
		if rbErr := tx.rollback(); rbErr != nil {
			return nil, errors.Join(err, fmt.Errorf("decibel: rolling back aborted commit: %w", rbErr))
		}
		return nil, err
	}
	return s.CommitWorkContext(ctx, tx.message)
}

// Branch creates a new branch named name from the current head of
// branch from, across every relation of the dataset. It holds a shared
// lock on from for the duration, so the branch point cannot move under
// a concurrent committer.
func (db *DB) Branch(from, name string) (*Branch, error) {
	s, err := db.NewSession()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.AcquireBranch(context.Background(), from, false); err != nil {
		return nil, err
	}
	return db.Database.BranchFromHead(name, from)
}

// mergeConfig collects Merge options; the defaults are the paper's:
// field-level three-way merge with the branch merged into winning
// conflicting fields.
type mergeConfig struct {
	message  string
	kind     MergeKind
	intoWins bool
}

// MergeOption configures DB.Merge.
type MergeOption func(*mergeConfig)

// WithMergeMessage sets the merge commit's message.
func WithMergeMessage(message string) MergeOption {
	return func(c *mergeConfig) { c.message = message }
}

// WithMergeKind selects the conflict model (TwoWay or ThreeWay;
// default ThreeWay).
func WithMergeKind(kind MergeKind) MergeOption {
	return func(c *mergeConfig) { c.kind = kind }
}

// WithMergePrecedence selects which side wins conflicting fields: true
// keeps the branch merged into (the default), false takes the branch
// being merged from.
func WithMergePrecedence(intoWins bool) MergeOption {
	return func(c *mergeConfig) { c.intoWins = intoWins }
}

// Merge merges the head of branch from into branch into across every
// relation and commits the result, returning the merge commit and
// per-merge statistics. By default it performs the paper's field-level
// three-way merge against the branches' lowest common ancestor, with
// into winning conflicting fields; see WithMergeKind, WithMergePrecedence
// and WithMergeMessage.
//
// Merge takes into's exclusive lock and from's shared lock before
// reading either head, so it serializes with name-based Commits on both
// branches instead of snapshotting a concurrent transaction's partial
// writes. Two merges locking the same pair of branches in opposite
// directions resolve by the lock manager's deadlock timeout.
func (db *DB) Merge(into, from string, opts ...MergeOption) (*Commit, MergeStats, error) {
	return db.MergeContext(context.Background(), into, from, opts...)
}

// MergeContext is Merge bounded by a context: the lock waits and the
// per-relation engine merges honor cancellation, with one relation as
// the granularity — large multi-table merges were the last long
// uninterruptible operation. A merge canceled between relations leaves
// the same partially-merged state a crash there would (the merge
// commit exists, later tables are unmerged), so treat a canceled merge
// like a torn one: re-merge or discard the branch.
func (db *DB) MergeContext(ctx context.Context, into, from string, opts ...MergeOption) (*Commit, MergeStats, error) {
	cfg := mergeConfig{
		message:  fmt.Sprintf("merge %s into %s", from, into),
		kind:     ThreeWay,
		intoWins: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := db.NewSession()
	if err != nil {
		return nil, MergeStats{}, err
	}
	defer s.Close()
	if err := s.CheckoutForWrite(ctx, into); err != nil {
		return nil, MergeStats{}, err
	}
	if err := s.AcquireBranch(ctx, from, false); err != nil {
		return nil, MergeStats{}, err
	}
	bi, err := db.BranchNamed(into)
	if err != nil {
		return nil, MergeStats{}, err
	}
	bf, err := db.BranchNamed(from)
	if err != nil {
		return nil, MergeStats{}, err
	}
	return db.Database.MergeContext(ctx, bi.ID, bf.ID, cfg.message, cfg.kind, cfg.intoWins)
}

// Rows iterates the records live at the named branch's head of the
// named table. Name-resolution failures surface through the trailing
// error accessor, like scan errors.
func (db *DB) Rows(table, branch string) (iter.Seq[*Record], func() error) {
	return db.RowsContext(context.Background(), table, branch)
}

// RowsContext is Rows bounded by a context: the sequence stops within
// one record of ctx being canceled and the error accessor reports
// ctx.Err().
func (db *DB) RowsContext(ctx context.Context, table, branch string) (iter.Seq[*Record], func() error) {
	t, terr := db.TableByName(table)
	if terr == nil {
		var b *Branch
		if b, terr = db.BranchNamed(branch); terr == nil {
			return t.RowsContext(ctx, b.ID)
		}
	}
	return func(func(*Record) bool) {}, func() error { return terr }
}

// Diff iterates the symmetric difference between the heads of two
// named branches of the named table: the bool is true for records live
// in a but not b, false for the reverse.
func (db *DB) Diff(table, a, b string) (iter.Seq2[*Record, bool], func() error) {
	return db.DiffContext(context.Background(), table, a, b)
}

// DiffContext is Diff bounded by a context.
func (db *DB) DiffContext(ctx context.Context, table, a, b string) (iter.Seq2[*Record, bool], func() error) {
	t, terr := db.TableByName(table)
	if terr == nil {
		var ba, bb *Branch
		if ba, terr = db.BranchNamed(a); terr == nil {
			if bb, terr = db.BranchNamed(b); terr == nil {
				return t.DiffContext(ctx, ba.ID, bb.ID)
			}
		}
	}
	return func(func(*Record, bool) bool) {}, func() error { return terr }
}
