package decibel_test

// Equivalence harness for the relational-algebra generalization: the
// greedy-ordered N-way join must emit exactly what a naive nested-loop
// reference computes (and exactly what the declared-order and
// sequential runs emit — byte-identical streams), and grouped
// streaming aggregates must equal a post-hoc fold over the plain row
// scan — across the pruning predicate corpus, the three engines, and
// worker counts {1,2,8}. The harness also asserts the new shapes
// respect Sequential()/Plan.NoParallel and that the parallel pool
// actually engages for them, so a silently declined (or silently
// engaged) path cannot pass.

import (
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"decibel"
	"decibel/internal/core"
	iquery "decibel/internal/query"
)

// buildJoinDB loads three joinable tables — orders (400 rows),
// users (40), items (15) — in two waves with a head-freezing branch
// between them, so every engine has multiple frozen, zone-mapped
// segments per table: what the greedy orderer estimates from and the
// parallel executor fans out over. An "alt" branch diverges from
// master by deleting some orders, for branch-targeted join legs.
func buildJoinDB(t *testing.T, engine string, opts ...decibel.Option) *decibel.DB {
	t.Helper()
	db, err := decibel.Open(t.TempDir(), append([]decibel.Option{decibel.WithEngine(engine)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	users := decibel.NewSchema().Int64("id").Int64("region").Bytes("name", 12).MustBuild()
	items := decibel.NewSchema().Int64("id").Float64("price").Bytes("tag", 8).MustBuild()
	orders := decibel.NewSchema().Int64("id").Int64("user_id").Int64("item_id").Int64("qty").MustBuild()
	for _, tb := range []struct {
		name string
		s    *decibel.Schema
	}{{"users", users}, {"items", items}, {"orders", orders}} {
		if _, err := db.CreateTable(tb.name, tb.s); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}

	loadUsers := func(lo, hi int64) {
		t.Helper()
		if _, err := db.Commit("master", func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo)
			for pk := lo; pk < hi; pk++ {
				rec := decibel.NewRecord(users)
				rec.SetPK(pk)
				rec.Set(1, pk%4)
				if err := rec.SetBytes(2, []byte(fmt.Sprintf("user-%04d", pk))); err != nil {
					return err
				}
				recs = append(recs, rec)
			}
			return tx.InsertBatch("users", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}
	loadItems := func(lo, hi int64) {
		t.Helper()
		if _, err := db.Commit("master", func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo)
			for pk := lo; pk < hi; pk++ {
				rec := decibel.NewRecord(items)
				rec.SetPK(pk)
				rec.SetFloat64(1, float64(pk)+0.5)
				if err := rec.SetBytes(2, []byte(fmt.Sprintf("it-%03d", pk))); err != nil {
					return err
				}
				recs = append(recs, rec)
			}
			return tx.InsertBatch("items", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}
	loadOrders := func(lo, hi int64) {
		t.Helper()
		if _, err := db.Commit("master", func(tx *decibel.Tx) error {
			recs := make([]*decibel.Record, 0, hi-lo)
			for pk := lo; pk < hi; pk++ {
				rec := decibel.NewRecord(orders)
				rec.SetPK(pk)
				rec.Set(1, pk%40) // user_id
				rec.Set(2, pk%15) // item_id
				rec.Set(3, pk%5)  // qty
				recs = append(recs, rec)
			}
			return tx.InsertBatch("orders", recs)
		}); err != nil {
			t.Fatal(err)
		}
	}

	loadUsers(0, 20)
	loadItems(0, 8)
	loadOrders(0, 200)
	if _, err := db.Branch("master", "freeze1"); err != nil {
		t.Fatal(err)
	}
	loadUsers(20, 40)
	loadItems(8, 15)
	loadOrders(200, 400)
	if _, err := db.Branch("master", "freeze2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Branch("master", "alt"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit("alt", func(tx *decibel.Tx) error {
		for pk := int64(0); pk < 30; pk++ {
			if err := tx.Delete("orders", pk); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// collectTuples drains a Tuples iterator into one line per tuple.
func collectTuples(seq iter.Seq[decibel.JoinTuple], errFn func() error) ([]string, error) {
	var out []string
	for tup := range seq {
		parts := make([]string, len(tup))
		for i, rec := range tup {
			parts[i] = rec.String()
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out, errFn()
}

// collectGroups drains a Groups iterator into one line per group.
func collectGroups(seq iter.Seq[*decibel.GroupRow], errFn func() error) ([]string, error) {
	var out []string
	for g := range seq {
		out = append(out, formatGroup(g.Key, g.Aggs))
	}
	return out, errFn()
}

func formatGroup(key []any, aggs []float64) string {
	parts := make([]string, len(key))
	for i, v := range key {
		if b, ok := v.([]byte); ok {
			v = string(b)
		}
		parts[i] = fmt.Sprintf("%v", v)
	}
	return strings.Join(parts, "|") + " => " + fmt.Sprint(aggs)
}

// legRows materializes one relation the naive reference joins over.
func legRows(t *testing.T, q *decibel.Query) []*decibel.Record {
	t.Helper()
	rows, errFn := q.Sequential().Rows()
	var out []*decibel.Record
	for rec := range rows {
		out = append(out, rec.Clone())
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
	return out
}

// refTuple3 is one nested-loop 3-way tuple (orders ⋈ users ⋈ items).
type refTuple3 struct{ o, u, i *decibel.Record }

// nestedLoop3 is the naive reference join: triple loop over the
// materialized relations, sorted into the canonical composite-pk
// order the executor emits in.
func nestedLoop3(orows, urows, irows []*decibel.Record) []refTuple3 {
	var ref []refTuple3
	for _, o := range orows {
		for _, u := range urows {
			if o.Get(1) != u.PK() {
				continue
			}
			for _, it := range irows {
				if o.Get(2) != it.PK() {
					continue
				}
				ref = append(ref, refTuple3{o: o, u: u, i: it})
			}
		}
	}
	sort.Slice(ref, func(a, b int) bool {
		x, y := ref[a], ref[b]
		if x.o.PK() != y.o.PK() {
			return x.o.PK() < y.o.PK()
		}
		if x.u.PK() != y.u.PK() {
			return x.u.PK() < y.u.PK()
		}
		return x.i.PK() < y.i.PK()
	})
	return ref
}

func fmtRef3(ref []refTuple3) []string {
	out := make([]string, len(ref))
	for i, r := range ref {
		out[i] = r.o.String() + " | " + r.u.String() + " | " + r.i.String()
	}
	return out
}

func TestJoinEquivalence3Way(t *testing.T) {
	type preds struct {
		label                  string
		oWhere, uWhere, iWhere decibel.Expr
		oHas, uHas, iHas       bool
	}
	cases := []preds{
		{label: "all"},
		{label: "orders-qty", oWhere: decibel.Col("qty").Lt(2), oHas: true},
		{label: "users-region", uWhere: decibel.Col("region").Eq(int64(1)), uHas: true},
		{label: "items-price", iWhere: decibel.Col("price").Lt(8.5), iHas: true},
		{label: "all-three",
			oWhere: decibel.Col("qty").Ge(1), oHas: true,
			uWhere: decibel.Col("region").Ne(int64(3)), uHas: true,
			iWhere: decibel.Col("price").Gt(3), iHas: true},
	}
	for _, engine := range facadeEngines {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", engine, workers), func(t *testing.T) {
				db := buildJoinDB(t, engine, decibel.WithScanWorkers(workers))
				for _, pc := range cases {
					mk := func() *decibel.Query {
						q := db.Query("orders").On("master")
						if pc.oHas {
							q = q.Where(pc.oWhere)
						}
						uq := db.Query("users")
						if pc.uHas {
							uq = uq.Where(pc.uWhere)
						}
						iq := db.Query("items")
						if pc.iHas {
							iq = iq.Where(pc.iWhere)
						}
						return q.JoinOn(uq, decibel.On("user_id", "id")).JoinOn(iq, decibel.On("item_id", "id"))
					}

					greedy, gErr := collectTuples(mk().Tuples())
					declared, dErr := collectTuples(mk().DeclaredJoinOrder().Tuples())
					sequential, sErr := collectTuples(mk().Sequential().Tuples())
					compareStreams(t, pc.label+" greedy-vs-declared", greedy, declared, gErr, dErr)
					compareStreams(t, pc.label+" greedy-vs-sequential", greedy, sequential, gErr, sErr)

					mkLeg := func(table string, has bool, w decibel.Expr) *decibel.Query {
						q := db.Query(table).On("master")
						if has {
							q = q.Where(w)
						}
						return q
					}
					ref := nestedLoop3(
						legRows(t, mkLeg("orders", pc.oHas, pc.oWhere)),
						legRows(t, mkLeg("users", pc.uHas, pc.uWhere)),
						legRows(t, mkLeg("items", pc.iHas, pc.iWhere)))
					compareStreams(t, pc.label+" greedy-vs-nested-loop", greedy, fmtRef3(ref), gErr, nil)

					// Grouped join: group the 3-way tuples by the user's
					// region, folding across relations (qty from orders,
					// price from items), against a fold over the reference
					// tuples in the same canonical order.
					aggs := []decibel.Agg{decibel.Count(), decibel.Sum("qty"), decibel.Avg("price")}
					got, gotErr := collectGroups(mk().GroupBy("region").Groups(aggs...))
					seqG, seqGErr := collectGroups(mk().GroupBy("region").Sequential().Groups(aggs...))
					compareStreams(t, pc.label+" grouped-join parallel-vs-sequential", got, seqG, gotErr, seqGErr)
					type acc struct {
						n    int
						qsum int64
						psum float64
					}
					m := map[int64]*acc{}
					var order []int64
					for _, r := range ref {
						region := r.u.Get(1)
						a := m[region]
						if a == nil {
							a = &acc{}
							m[region] = a
							order = append(order, region)
						}
						a.n++
						a.qsum += r.o.Get(3)
						a.psum += r.i.GetFloat64(1)
					}
					want := make([]string, len(order))
					for i, region := range order {
						a := m[region]
						want[i] = formatGroup([]any{region},
							[]float64{float64(a.n), float64(a.qsum), a.psum / float64(a.n)})
					}
					compareStreams(t, pc.label+" grouped-join-vs-ref", got, want, gotErr, nil)
				}

				// The greedy order must lead with the smallest-estimate
				// relation — items (15 rows), not the declared root
				// orders (400 rows).
				c, err := iquery.Plan{Table: "orders", Branches: []string{"master"}, AtSeq: -1, Joins: []iquery.JoinLeg{
					{Plan: iquery.Plan{Table: "users", AtSeq: -1}, LeftCol: "user_id", RightCol: "id"},
					{Plan: iquery.Plan{Table: "items", AtSeq: -1}, LeftCol: "item_id", RightCol: "id"},
				}}.Compile(db.Database)
				if err != nil {
					t.Fatal(err)
				}
				ord, ests := c.JoinOrder(), c.JoinEstimates()
				for i := range ests {
					if ests[ord[0]] > ests[i] {
						t.Fatalf("greedy order %v does not lead with the smallest estimate %v", ord, ests)
					}
				}
				if ord[0] == 0 {
					t.Fatalf("greedy order %v starts at the declared root despite estimates %v", ord, ests)
				}
			})
		}
	}
}

// TestJoinCorpusEquivalence runs the version-join configuration of the
// general node — the same table's two branch heads joined on the
// primary key — under the pruning predicate corpus, against both a
// nested-loop reference and the deprecated two-branch Join terminal.
func TestJoinCorpusEquivalence(t *testing.T) {
	for _, engine := range facadeEngines {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", engine, workers), func(t *testing.T) {
				db := buildPruningDB(t, engine, decibel.WithScanWorkers(workers))
				rng := rand.New(rand.NewSource(0x10b5))
				preds := []iquery.Expr{
					decibel.Col("price").Lt(7.5),
					decibel.Col("sku").HasPrefix("b"),
					decibel.Col("v").Ge(120),
				}
				for i := 0; i < 15; i++ {
					preds = append(preds, randExpr(rng, 2))
				}
				for i, where := range preds {
					label := fmt.Sprintf("pred[%d]", i)
					mk := func() *decibel.Query {
						return db.Query("r").On("master").Where(where).
							JoinOn(db.Query("r").On("b1"), decibel.On("id", "id"))
					}
					greedy, gErr := collectTuples(mk().Tuples())
					declared, dErr := collectTuples(mk().DeclaredJoinOrder().Tuples())
					sequential, sErr := collectTuples(mk().Sequential().Tuples())
					compareStreams(t, label+" greedy-vs-declared", greedy, declared, gErr, dErr)
					compareStreams(t, label+" greedy-vs-sequential", greedy, sequential, gErr, sErr)

					// Nested loop over the two materialized sides.
					left := legRows(t, db.Query("r").On("master").Where(where))
					right := legRows(t, db.Query("r").On("b1"))
					byPK := map[int64]*decibel.Record{}
					for _, r := range right {
						byPK[r.PK()] = r
					}
					type pair struct{ l, r *decibel.Record }
					var ref []pair
					for _, l := range left {
						if r, ok := byPK[l.PK()]; ok {
							ref = append(ref, pair{l, r})
						}
					}
					sort.Slice(ref, func(a, b int) bool { return ref[a].l.PK() < ref[b].l.PK() })
					want := make([]string, len(ref))
					for j, p := range ref {
						want[j] = p.l.String() + " | " + p.r.String()
					}
					compareStreams(t, label+" greedy-vs-nested-loop", greedy, want, gErr, nil)

					// The deprecated version-join terminal must agree with
					// the general node it now wraps on which pairs join and
					// in what order. (Record width can differ: the pair
					// terminal reads both branches at their union schema
					// epoch, while the general node compiles each leg at
					// its own branch's epoch — b1 never grew "price".)
					pairs, pErr := db.Query("r").Where(where).Join("master", "b1")
					var old []string
					for l, r := range pairs {
						old = append(old, fmt.Sprintf("%s | pk=%d", l.String(), r.PK()))
					}
					tuples, tErr := mk().Tuples()
					var niu []string
					for tup := range tuples {
						niu = append(niu, fmt.Sprintf("%s | pk=%d", tup[0].String(), tup[1].PK()))
					}
					compareStreams(t, label+" new-vs-deprecated", niu, old, tErr(), pErr())
				}
			})
		}
	}
}

// refAgg mirrors one Agg for the post-hoc reference fold.
type refAgg struct {
	kind byte // c,s,m,M,a
	col  string
}

// refGroupFold folds the rows of a sequential ungrouped scan post hoc,
// replicating the streaming fold's arithmetic exactly (int columns
// accumulate as int64, first-arrival emission order).
func refGroupFold(rows []*decibel.Record, groupCols []string, aggs []refAgg) []string {
	type acc struct {
		key  []any
		n    []int
		isum []int64
		fsum []float64
		fmin []float64
		fmax []float64
	}
	m := map[string]*acc{}
	var order []string
	isFloat := make([]bool, len(aggs))
	for _, rec := range rows {
		sch := rec.Schema()
		keyParts := make([]string, len(groupCols))
		keyVals := make([]any, len(groupCols))
		for i, name := range groupCols {
			ci := sch.ColumnIndex(name)
			var v any
			switch sch.Column(ci).Type {
			case decibel.Float64:
				v = rec.GetFloat64(ci)
			case decibel.Bytes:
				v = string(append([]byte(nil), rec.GetBytes(ci)...))
			default:
				v = rec.Get(ci)
			}
			keyVals[i] = v
			keyParts[i] = fmt.Sprintf("%v", v)
		}
		key := strings.Join(keyParts, "|")
		a := m[key]
		if a == nil {
			a = &acc{key: keyVals,
				n: make([]int, len(aggs)), isum: make([]int64, len(aggs)),
				fsum: make([]float64, len(aggs)), fmin: make([]float64, len(aggs)), fmax: make([]float64, len(aggs))}
			m[key] = a
			order = append(order, key)
		}
		for i, ag := range aggs {
			a.n[i]++
			if ag.kind == 'c' {
				continue
			}
			ci := sch.ColumnIndex(ag.col)
			var f float64
			if sch.Column(ci).Type == decibel.Float64 {
				isFloat[i] = true
				f = rec.GetFloat64(ci)
				a.fsum[i] += f
			} else {
				iv := rec.Get(ci)
				a.isum[i] += iv
				f = float64(iv)
			}
			if a.n[i] == 1 || f < a.fmin[i] {
				a.fmin[i] = f
			}
			if a.n[i] == 1 || f > a.fmax[i] {
				a.fmax[i] = f
			}
		}
	}
	out := make([]string, len(order))
	for j, key := range order {
		a := m[key]
		res := make([]float64, len(aggs))
		for i, ag := range aggs {
			sum := float64(a.isum[i])
			if isFloat[i] {
				sum = a.fsum[i]
			}
			switch ag.kind {
			case 'c':
				res[i] = float64(a.n[i])
			case 's':
				res[i] = sum
			case 'm':
				res[i] = a.fmin[i]
			case 'M':
				res[i] = a.fmax[i]
			default: // avg
				res[i] = sum / float64(a.n[i])
			}
		}
		out[j] = formatGroup(a.key, res)
	}
	return out
}

func TestGroupByEquivalence(t *testing.T) {
	aggs := []decibel.Agg{decibel.Count(), decibel.Sum("v"), decibel.Min("price"), decibel.Max("price"), decibel.Avg("price")}
	refs := []refAgg{{'c', ""}, {'s', "v"}, {'m', "price"}, {'M', "price"}, {'a', "price"}}
	type shape struct {
		label    string
		branches []string
		heads    bool
	}
	shapes := []shape{
		{"master", []string{"master"}, false},
		{"b2", []string{"b2"}, false},
		{"multi", []string{"master", "b1"}, false},
		{"heads", nil, true},
	}
	groupings := [][]string{{"price"}, {"sku"}, {"price", "sku"}}
	for _, engine := range facadeEngines {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", engine, workers), func(t *testing.T) {
				db := buildPruningDB(t, engine, decibel.WithScanWorkers(workers))
				preds := []iquery.Expr{
					{},
					decibel.Col("price").Lt(7.5),
					decibel.Col("price").Ge(7.5),
					decibel.Col("sku").HasPrefix("c"),
					decibel.Col("v").Ge(120).And(decibel.Col("sku").HasPrefix("b")),
				}
				rng := rand.New(rand.NewSource(0x96f0))
				for i := 0; i < 20; i++ {
					preds = append(preds, randExpr(rng, 2))
				}
				for pi, where := range preds {
					for _, sh := range shapes {
						mk := func() *decibel.Query {
							q := db.Query("r").Where(where)
							if sh.heads {
								return q.Heads()
							}
							return q.On(sh.branches...)
						}
						for gi, gcols := range groupings {
							label := fmt.Sprintf("pred[%d] %s group[%d]", pi, sh.label, gi)
							par, parErr := collectGroups(mk().GroupBy(gcols...).Groups(aggs...))
							seq, seqErr := collectGroups(mk().GroupBy(gcols...).Sequential().Groups(aggs...))
							compareStreams(t, label+" parallel-vs-sequential", par, seq, parErr, seqErr)
							if seqErr != nil {
								continue
							}
							want := refGroupFold(legRows(t, mk()), gcols, refs)
							compareStreams(t, label+" streaming-vs-posthoc", seq, want, seqErr, nil)
						}
					}
				}
			})
		}
	}
}

// TestJoinGroupByPoolDiscipline asserts the fix of this PR's satellite:
// joined and grouped scans must stay off the parallel pool under
// Sequential()/Plan.NoParallel — strictly, per engine — and must engage
// it when parallel-eligible. Engagement is asserted across the engine
// set (like TestParallelScanEquivalence): whether a given scan
// partitions into enough units is an engine property, but a pool that
// never engages for the new shapes at all is a silently disabled path.
func TestJoinGroupByPoolDiscipline(t *testing.T) {
	var groupDelta, joinDelta int64
	for _, engine := range facadeEngines {
		t.Run(engine, func(t *testing.T) {
			db := buildPruningDB(t, engine, decibel.WithScanWorkers(4))
			jdb := buildJoinDB(t, engine, decibel.WithScanWorkers(4))

			runGroup := func(db *decibel.DB, seq bool) {
				t.Helper()
				q := db.Query("r").On("master")
				if seq {
					q = q.Sequential()
				}
				groups, errFn := q.GroupBy("price").Groups(decibel.Count(), decibel.Avg("v"))
				for range groups {
				}
				if err := errFn(); err != nil {
					t.Fatal(err)
				}
			}
			runJoin := func(seq bool) {
				t.Helper()
				q := jdb.Query("orders").On("master")
				if seq {
					q = q.Sequential()
				}
				tuples, errFn := q.JoinOn(jdb.Query("users"), decibel.On("user_id", "id")).Tuples()
				for range tuples {
				}
				if err := errFn(); err != nil {
					t.Fatal(err)
				}
			}

			before, _ := core.ParallelScanCounters()
			runGroup(db, true)
			runJoin(true)
			after, _ := core.ParallelScanCounters()
			if after != before {
				t.Fatalf("Sequential() joined/grouped scans engaged the parallel pool (%d→%d scans)", before, after)
			}
			runGroup(db, false)
			mid, _ := core.ParallelScanCounters()
			groupDelta += mid - after
			runJoin(false)
			end, _ := core.ParallelScanCounters()
			joinDelta += end - mid
		})
	}
	if groupDelta == 0 {
		t.Fatalf("grouped scans never engaged the parallel pool on any engine")
	}
	if joinDelta == 0 {
		t.Fatalf("joined scans never engaged the parallel pool on any engine")
	}
}

// TestJoinGroupByErrors pins the plan-time error taxonomy of the new
// shapes — the same table the server's error-code mapping serves from.
func TestJoinGroupByErrors(t *testing.T) {
	db := buildJoinDB(t, "hybrid")
	pdb := buildPruningDB(t, "hybrid")

	drainT := func(s iter.Seq[decibel.JoinTuple], e func() error) error {
		for range s {
		}
		return e()
	}
	drainG := func(s iter.Seq[*decibel.GroupRow], e func() error) error {
		for range s {
		}
		return e()
	}
	drainR := func(s iter.Seq[*decibel.Record], e func() error) error {
		for range s {
		}
		return e()
	}

	cases := []struct {
		label string
		want  error
		run   func() error
	}{
		{"float join key", decibel.ErrBadQuery, func() error {
			return drainT(db.Query("orders").On("master").JoinOn(db.Query("items"), decibel.On("qty", "price")).Tuples())
		}},
		{"int-bytes key mismatch", decibel.ErrTypeMismatch, func() error {
			return drainT(db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("user_id", "name")).Tuples())
		}},
		{"unknown join key", decibel.ErrNoSuchColumn, func() error {
			return drainT(db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("nope", "id")).Tuples())
		}},
		{"join key projected out", decibel.ErrBadQuery, func() error {
			return drainT(db.Query("orders").On("master").Select("id", "qty").
				JoinOn(db.Query("users"), decibel.On("user_id", "id")).Tuples())
		}},
		{"group col missing from Select", decibel.ErrBadQuery, func() error {
			return drainG(pdb.Query("r").On("master").Select("id", "v").GroupBy("sku").Groups(decibel.Count()))
		}},
		{"unknown group col", decibel.ErrNoSuchColumn, func() error {
			return drainG(pdb.Query("r").On("master").GroupBy("nope").Groups(decibel.Count()))
		}},
		{"groupBy with OrderBy", decibel.ErrBadQuery, func() error {
			return drainG(pdb.Query("r").On("master").OrderBy("v", false).GroupBy("sku").Groups(decibel.Count()))
		}},
		{"Rows on joined query", decibel.ErrBadQuery, func() error {
			return drainR(db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("user_id", "id")).Rows())
		}},
		{"Rows on grouped query", decibel.ErrBadQuery, func() error {
			return drainR(pdb.Query("r").On("master").GroupBy("sku").Rows())
		}},
		{"scalar Sum over join", decibel.ErrBadQuery, func() error {
			_, err := db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("user_id", "id")).Sum("qty")
			return err
		}},
		{"Tuples without join", decibel.ErrBadQuery, func() error {
			return drainT(db.Query("orders").On("master").Tuples())
		}},
		{"Groups without GroupBy", decibel.ErrBadQuery, func() error {
			return drainG(db.Query("orders").On("master").Groups(decibel.Count()))
		}},
		{"join leg scans every head", decibel.ErrBadQuery, func() error {
			return drainT(db.Query("orders").On("master").JoinOn(db.Query("users").Heads(), decibel.On("user_id", "id")).Tuples())
		}},
		{"join over multi-branch root", decibel.ErrBadQuery, func() error {
			return drainT(db.Query("orders").On("master", "alt").JoinOn(db.Query("users"), decibel.On("user_id", "id")).Tuples())
		}},
		{"aggregate over bytes column", decibel.ErrTypeMismatch, func() error {
			return drainG(db.Query("users").On("master").GroupBy("region").Groups(decibel.Sum("name")))
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.label, err, tc.want)
		}
	}

	// Count is the one scalar fold defined over a join, and the joined
	// tuples it counts must agree with the tuple stream.
	n, err := db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("user_id", "id")).Count()
	if err != nil {
		t.Fatal(err)
	}
	tuples, errFn := db.Query("orders").On("master").JoinOn(db.Query("users"), decibel.On("user_id", "id")).Tuples()
	m := 0
	for range tuples {
		m++
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
	if n != m || n != 400 {
		t.Fatalf("join Count %d, tuple stream %d (want 400)", n, m)
	}
}
