package decibel_test

// Tuple-first page-zone regression: tf's extents span every branch's
// rows, so the extent-level zone map almost never prunes — per-page
// zone maps restore skipping inside the extent. This test loads
// sequential data over many small pages, runs a selective range scan,
// and asserts pages were actually skipped while the results stay
// identical to the unpruned baseline.

import (
	"context"
	"testing"

	"decibel"
	iquery "decibel/internal/query"
	"decibel/internal/record"
	"decibel/internal/store"
)

func TestTupleFirstPageZoneSkipping(t *testing.T) {
	const rows = 2000
	// Small pages: many page-zone chunks inside the single tf extent.
	db, err := decibel.Open(t.TempDir(),
		decibel.WithEngine("tuple-first"), decibel.WithPageSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := decibel.NewSchema().Int64("id").Int64("v").MustBuild()
	if _, err := db.CreateTable("r", schema); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Init("init"); err != nil {
		t.Fatal(err)
	}
	// Sequential values: each page holds a narrow contiguous v range, so
	// a selective range predicate excludes most pages outright.
	if _, err := db.Commit("master", func(tx *decibel.Tx) error {
		recs := make([]*decibel.Record, 0, rows)
		for pk := int64(0); pk < rows; pk++ {
			rec := decibel.NewRecord(schema)
			rec.SetPK(pk)
			rec.Set(1, pk)
			recs = append(recs, rec)
		}
		return tx.InsertBatch("r", recs)
	}); err != nil {
		t.Fatal(err)
	}

	run := func(noPrune bool) []string {
		t.Helper()
		plan := iquery.Plan{
			Table:    "r",
			Branches: []string{"master"},
			AtSeq:    -1,
			Where:    iquery.Col("v").Ge(rows - 25),
			NoPrune:  noPrune,
		}
		c, err := plan.Compile(db.Database)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		if err := c.Scan(context.Background(), func(rec *record.Record) bool {
			out = append(out, rec.String())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	_, skippedBefore := store.PageScanCounters()
	got := run(false)
	_, skippedAfter := store.PageScanCounters()

	want := run(true) // unpruned baseline scans every page
	if len(got) != len(want) {
		t.Fatalf("pruned scan emitted %d rows, unpruned %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: pruned %q unpruned %q", i, got[i], want[i])
		}
	}
	if len(got) != 25 {
		t.Fatalf("selective scan emitted %d rows, want 25", len(got))
	}
	if skippedAfter == skippedBefore {
		t.Fatal("page zones never skipped a page: tf per-page pruning is not engaging")
	}
}
